"""Tests for the SQLite run registry behind ``repro serve``."""

import sqlite3
import threading

import pytest

from repro.serve.store import RUN_STATUSES, RunStore, SCHEMA_VERSION, new_run_id


@pytest.fixture()
def store(tmp_path):
    with RunStore(tmp_path / "runs.sqlite") as s:
        yield s


class TestSchema:
    def test_fresh_store_at_current_version(self, store):
        assert store.schema_version == SCHEMA_VERSION

    def test_reopen_is_a_noop(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with RunStore(path) as first:
            rid = first.create_run("evaluate", scenario_id="s")
        with RunStore(path) as second:
            assert second.schema_version == SCHEMA_VERSION
            assert second.get_run(rid)["scenario_id"] == "s"

    def test_newer_schema_refused(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        RunStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(RuntimeError, match="newer"):
            RunStore(path)

    def test_wal_mode(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_run_ids_unique_and_short(self):
        ids = {new_run_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(i) == 12 for i in ids)


class TestLifecycle:
    def test_round_trip(self, store):
        rid = store.create_run(
            "evaluate", scenario_id="inasim-tiny-v1", policy="playbook",
            seed=7, episodes=3, tags=["a", "b"],
            detail={"max_steps": 20}, code_version="1.2.0",
        )
        store.mark_running(rid)
        for i in range(3):
            store.record_episode(rid, i, {"discounted_return": float(i)},
                                 seed=7 + i, wall_time=0.01)
        store.finish_run(rid, {"discounted_return": [1.0, 0.5]})

        run = store.get_run(rid)
        assert run["status"] == "done"
        assert run["scenario_id"] == "inasim-tiny-v1"
        assert run["tags"] == ["a", "b"]
        assert run["detail"] == {"max_steps": 20}
        assert run["metrics"] == {"discounted_return": [1.0, 0.5]}
        assert run["wall_time"] is not None and run["wall_time"] >= 0
        assert run["code_version"] == "1.2.0"

        episodes = store.episodes_of(rid)
        assert [e["episode_index"] for e in episodes] == [0, 1, 2]
        assert [e["seed"] for e in episodes] == [7, 8, 9]
        assert episodes[1]["detail"] == {"discounted_return": 1.0}

    def test_inline_spec_round_trip(self, store):
        spec = {"scenario_id": "inline-x", "preset": "tiny"}
        rid = store.create_run("evaluate", spec=spec)
        assert store.get_run(rid)["spec"] == spec

    def test_fail_and_cancel(self, store):
        bad = store.create_run("evaluate")
        store.mark_running(bad)
        store.fail_run(bad, "boom")
        assert store.get_run(bad)["status"] == "error"
        assert store.get_run(bad)["error"] == "boom"

        dropped = store.create_run("evaluate")
        store.cancel_run(dropped)
        run = store.get_run(dropped)
        assert run["status"] == "cancelled"
        # never started, so no wall time to report
        assert run["wall_time"] is None

    def test_mark_running_only_from_queued(self, store):
        rid = store.create_run("evaluate")
        store.cancel_run(rid)
        store.mark_running(rid)  # must not resurrect a terminal run
        assert store.get_run(rid)["status"] == "cancelled"

    def test_unknown_status_rejected(self, store):
        with pytest.raises(ValueError):
            store.create_run("evaluate", status="launched")
        assert "queued" in RUN_STATUSES

    def test_get_unknown_run(self, store):
        assert store.get_run("nope") is None


class TestListing:
    def _seed_runs(self, store):
        a = store.create_run("evaluate", scenario_id="s1", tags=["x"])
        b = store.create_run("evaluate", scenario_id="s2", tags=["x", "y"])
        c = store.create_run("selfplay", scenario_id="s1")
        store.mark_running(c)
        store.finish_run(c, {})
        return a, b, c

    def test_newest_first(self, store):
        a, b, c = self._seed_runs(store)
        listed = [run["run_id"] for run in store.list_runs()]
        assert set(listed) == {a, b, c}
        assert listed[0] == c  # created last

    def test_filters(self, store):
        a, b, c = self._seed_runs(store)
        assert {r["run_id"] for r in store.list_runs(scenario="s1")} == {a, c}
        assert {r["run_id"] for r in store.list_runs(kind="selfplay")} == {c}
        assert {r["run_id"] for r in store.list_runs(status="done")} == {c}
        assert {r["run_id"] for r in store.list_runs(tag="y")} == {b}
        assert store.list_runs(tag="absent") == []

    def test_limit(self, store):
        self._seed_runs(store)
        assert len(store.list_runs(limit=2)) == 2
        assert store.count_runs() == 3


class TestConcurrency:
    def test_threaded_writers_one_handle(self, store):
        """Many threads hammering one handle: every row must land."""
        errors = []

        def write(k):
            try:
                rid = store.create_run("evaluate", scenario_id=f"s{k}")
                store.mark_running(rid)
                for i in range(5):
                    store.record_episode(rid, i, {"k": k}, seed=i)
                store.finish_run(rid, {"ok": k})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.count_runs() == 8
        for run in store.list_runs():
            assert run["status"] == "done"
            assert len(store.episodes_of(run["run_id"])) == 5

    def test_concurrent_wal_handles(self, tmp_path):
        """Independent handles on one file (service + CLI) coexist."""
        path = tmp_path / "runs.sqlite"
        writer = RunStore(path)
        reader = RunStore(path)
        errors = []

        def write():
            try:
                for k in range(10):
                    rid = writer.create_run("evaluate", scenario_id=f"w{k}")
                    writer.finish_run(rid, {})
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def read():
            try:
                for _ in range(20):
                    reader.list_runs()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write),
                   threading.Thread(target=read)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert reader.count_runs() == 10
        writer.close()
        reader.close()
