"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        commands = set(sub.choices)
        assert commands == {
            "topology", "simulate", "evaluate", "fig6", "fig10",
            "fit-dbn", "trace", "config", "scenarios", "selfplay",
            "serve", "submit", "runs", "check", "ope",
        }

    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_version_single_sourced(self):
        """setup.py must carry no literal version of its own."""
        import pathlib
        import re

        import repro

        setup_py = (pathlib.Path(__file__).parent.parent
                    / "setup.py").read_text()
        assert 'version="' not in setup_py
        init_py = (pathlib.Path(repro.__file__)).read_text()
        match = re.search(r'^__version__ = "([^"]+)"$', init_py, re.MULTILINE)
        assert match and match.group(1) == repro.__version__

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topology", "--preset", "huge"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "magic"])


class TestScenarios:
    def test_lists_catalogue(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "inasim-paper-v1" in out
        assert "tiny-scripted-rush-v1" in out

    def test_tag_filter(self, capsys):
        assert main(["scenarios", "--tag", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "paper-destroy-opc-v1" in out
        assert "inasim-tiny-v1" not in out

    def test_unknown_tag_fails(self, capsys):
        assert main(["scenarios", "--tag", "no-such-tag"]) == 1

    def test_simulate_accepts_scenario(self, capsys):
        code = main([
            "simulate", "--scenario", "inasim-tiny-v1", "--policy", "noop",
            "--episodes", "1", "--max-steps", "10",
        ])
        assert code == 0
        assert "noop" in capsys.readouterr().out

    def test_simulate_num_envs_matches_single(self, capsys):
        argv = ["simulate", "--scenario", "inasim-tiny-v1", "--policy",
                "playbook", "--episodes", "2", "--max-steps", "20"]
        main(argv)
        single = capsys.readouterr().out.splitlines()[-1]
        main(argv + ["--num-envs", "2"])
        vec = capsys.readouterr().out.splitlines()[-1]
        assert single == vec  # identical metrics row

    def test_unknown_scenario_id_fails(self, capsys):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["simulate", "--scenario", "nope-v1", "--episodes", "1"])


class TestTopology:
    def test_prints_inventory(self, capsys):
        assert main(["topology", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "nodes: 6" in out
        assert "plcs: 4" in out
        assert "server-opc" in out

    def test_paper_preset_counts(self, capsys):
        main(["topology", "--preset", "paper"])
        out = capsys.readouterr().out
        assert "nodes: 33" in out
        assert "plcs: 50" in out


class TestSimulate:
    def test_noop_policy_runs(self, capsys):
        code = main([
            "simulate", "--preset", "tiny", "--policy", "noop",
            "--episodes", "1", "--max-steps", "20",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Discounted Return" in out
        assert "noop" in out

    def test_verbose_prints_per_episode(self, capsys):
        main([
            "simulate", "--preset", "tiny", "--policy", "playbook",
            "--episodes", "2", "--max-steps", "15", "--verbose",
        ])
        out = capsys.readouterr().out
        assert out.count("seed=") == 2


class TestConfigCommand:
    def test_prints_valid_json(self, capsys):
        main(["config", "--preset", "tiny"])
        data = json.loads(capsys.readouterr().out)
        assert data["topology"]["plcs"] == 4

    def test_config_file_roundtrip(self, capsys, tmp_path):
        main(["config", "--preset", "tiny"])
        path = tmp_path / "c.json"
        path.write_text(capsys.readouterr().out)
        code = main([
            "simulate", "--config", str(path), "--policy", "noop",
            "--episodes", "1", "--max-steps", "10",
        ])
        assert code == 0

    def test_max_steps_caps_tmax(self, capsys):
        main(["config", "--preset", "tiny", "--max-steps", "50"])
        data = json.loads(capsys.readouterr().out)
        assert data["tmax"] == 50


class TestTrace:
    def test_writes_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        code = main([
            "trace", "--preset", "tiny", "--policy", "random",
            "--max-steps", "15", "--out", str(out_path),
        ])
        assert code == 0
        lines = out_path.read_text().strip().split("\n")
        assert len(lines) == 16  # header + 15 steps
        assert "wrote 15-step trace" in capsys.readouterr().out


class TestFitDbn:
    def test_writes_tables(self, capsys, tmp_path):
        out_path = tmp_path / "tables.npz"
        code = main([
            "fit-dbn", "--preset", "tiny", "--episodes", "2",
            "--max-steps", "30", "--out", str(out_path),
        ])
        assert code == 0
        from repro.dbn import DBNTables

        tables = DBNTables.load(out_path)
        assert tables.transition.ndim == 4


@pytest.fixture(scope="module")
def dbn_file(tmp_path_factory):
    """Tables fitted once and passed to the experiment subcommands via
    --dbn, so they skip the fit-on-the-fly path."""
    path = tmp_path_factory.mktemp("cli") / "tables.npz"
    main(["fit-dbn", "--preset", "tiny", "--episodes", "2",
          "--max-steps", "30", "--out", str(path)])
    return str(path)


class TestExperimentCommands:
    def test_evaluate_prints_all_baselines(self, capsys, dbn_file):
        code = main([
            "evaluate", "--preset", "tiny", "--episodes", "1",
            "--max-steps", "20", "--dbn", dbn_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("DBN Expert", "Playbook", "Semi Random"):
            assert name in out

    def test_fig6_prints_both_panels(self, capsys, dbn_file):
        code = main([
            "fig6", "--preset", "tiny", "--episodes", "1",
            "--max-steps", "15", "--dbn", dbn_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "final_plcs_offline" in out
        assert "avg_nodes_compromised" in out

    def test_fig10_prints_both_attackers(self, capsys, dbn_file):
        code = main([
            "fig10", "--preset", "tiny", "--episodes", "1",
            "--max-steps", "15", "--dbn", dbn_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "APT1" in out and "APT2" in out

    def test_acso_policy_with_untrained_network(self, capsys, dbn_file):
        code = main([
            "simulate", "--preset", "tiny", "--policy", "acso",
            "--episodes", "1", "--max-steps", "10", "--dbn", dbn_file,
        ])
        assert code == 0
        assert "acso" in capsys.readouterr().out


class TestSelfplay:
    def test_round_reports_and_persists_population(self, capsys, dbn_file,
                                                   tmp_path):
        from repro.scenarios.registry import REGISTRY

        pop_path = tmp_path / "population.json"
        code = main([
            "selfplay", "--preset", "tiny", "--rounds", "1",
            "--max-steps", "20", "--train-episodes", "1",
            "--cem-population", "2", "--cem-iterations", "1",
            "--fitness-episodes", "1", "--episodes", "1",
            "--dbn", dbn_file, "--run-name", "cli-test",
            "--save-population", str(pop_path),
        ])
        out = capsys.readouterr().out
        try:
            assert code == 0
            assert "exploitability report" in out
            assert "selfplay/cli-test-r1-br1" in out
            assert "verify repro.make('selfplay/cli-test-r1-br1'): ok" in out
            assert pop_path.exists()
            # the emitted best response is a loadable scenario
            assert "selfplay/cli-test-r1-br1" in REGISTRY
            import repro

            assert repro.make("selfplay/cli-test-r1-br1").config is not None
        finally:
            REGISTRY.unregister("selfplay/cli-test-base")
            REGISTRY.unregister("selfplay/cli-test-r1-br1")

    def test_load_population_resumes(self, capsys, dbn_file, tmp_path):
        from repro.scenarios.registry import REGISTRY

        pop_path = tmp_path / "population.json"
        common = [
            "selfplay", "--preset", "tiny", "--max-steps", "15",
            "--train-episodes", "1", "--cem-population", "2",
            "--cem-iterations", "1", "--fitness-episodes", "1",
            "--episodes", "1", "--dbn", dbn_file,
        ]
        try:
            assert main(common + ["--rounds", "1", "--run-name", "cli-a",
                                  "--save-population", str(pop_path)]) == 0
            capsys.readouterr()
            assert main(common + ["--rounds", "1", "--run-name", "cli-b",
                                  "--load-population", str(pop_path)]) == 0
            out = capsys.readouterr().out
            assert "loaded 2-member population" in out
            assert "selfplay/cli-b-r1-br1" in out
        finally:
            for sid in ("selfplay/cli-a-base", "selfplay/cli-a-r1-br1",
                        "selfplay/cli-b-r1-br1"):
                REGISTRY.unregister(sid)


class TestRunsCli:
    @pytest.fixture()
    def store_path(self, tmp_path):
        from repro.serve.store import RunStore

        path = tmp_path / "runs.sqlite"
        with RunStore(path) as store:
            rid = store.create_run(
                "evaluate", scenario_id="inasim-tiny-v1", policy="playbook",
                seed=7, episodes=2, tags=["cli-test"],
            )
            store.mark_running(rid)
            store.record_episode(rid, 0, {"steps": 5}, seed=7, wall_time=0.1)
            store.record_episode(rid, 1, {"steps": 5}, seed=8, wall_time=0.1)
            store.finish_run(rid, {"discounted_return": [1.0, 0.0]})
            store.create_run("selfplay", scenario_id="inasim-tiny-v1",
                             policy="playbook", seed=1)
        return str(path), rid

    def test_runs_list(self, capsys, store_path):
        path, rid = store_path
        assert main(["runs", "list", "--db", path]) == 0
        out = capsys.readouterr().out
        assert rid in out and "cli-test" in out
        assert "selfplay" in out

    def test_runs_list_filters(self, capsys, store_path):
        path, rid = store_path
        assert main(["runs", "list", "--db", path, "--status", "done"]) == 0
        out = capsys.readouterr().out
        assert rid in out and "queued" not in out
        # filter that matches nothing exits 1
        assert main(["runs", "list", "--db", path,
                     "--tag", "absent"]) == 1

    def test_runs_show(self, capsys, store_path):
        path, rid = store_path
        assert main(["runs", "show", rid, "--db", path]) == 0
        out = capsys.readouterr().out
        assert rid in out
        assert "episode records (2)" in out
        assert "discounted_return" in out

    def test_runs_show_unknown_id(self, store_path):
        path, _ = store_path
        with pytest.raises(SystemExit):
            main(["runs", "show", "nope", "--db", path])

    def test_runs_missing_db(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["runs", "list", "--db", str(tmp_path / "absent.sqlite")])

    def test_submit_without_server_fails_cleanly(self):
        # port 1 is never listening; the client maps the socket error
        # to a friendly SystemExit instead of a traceback
        with pytest.raises(SystemExit):
            main(["submit", "--scenario", "inasim-tiny-v1",
                  "--port", "1", "--host", "127.0.0.1"])
