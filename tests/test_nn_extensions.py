"""Tests for the nn extensions: GRU recurrence, noisy linear layers,
log-softmax, and the categorical cross-entropy loss."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    GRU,
    GRUCell,
    NoisyLinear,
    Tensor,
    categorical_cross_entropy,
)

rng = np.random.default_rng(77)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = Tensor(rng.normal(size=(4, 9)))
        assert np.allclose(x.log_softmax().data, np.log(x.softmax().data))

    def test_rows_normalize(self):
        x = Tensor(rng.normal(size=(6, 5)) * 10)
        probs = np.exp(x.log_softmax().data)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_numerically_stable_for_large_logits(self):
        x = Tensor(np.array([[1e4, 0.0, -1e4]]))
        out = x.log_softmax().data
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(0.0, abs=1e-6)

    def test_gradient_matches_finite_differences(self):
        x = rng.normal(size=(3, 5))

        def analytic():
            t = Tensor(x, requires_grad=True)
            loss = (t.log_softmax() * t.log_softmax()).sum()
            loss.backward()
            return t.grad

        def f():
            val = Tensor(x).log_softmax().data
            return float((val * val).sum())

        assert np.allclose(analytic(), numeric_grad(f, x), atol=1e-5)


class TestCategoricalCrossEntropy:
    def test_zero_when_prediction_matches_onehot_target(self):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        target = np.array([[1.0, 0.0, 0.0]])
        loss = categorical_cross_entropy(logits.log_softmax(), target)
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_equals_entropy_for_matching_distributions(self):
        p = np.array([[0.2, 0.3, 0.5]])
        loss = categorical_cross_entropy(Tensor(np.log(p)), p)
        entropy = -(p * np.log(p)).sum()
        assert loss.item() == pytest.approx(entropy)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            categorical_cross_entropy(
                Tensor(np.zeros((2, 3))), np.zeros((2, 4))
            )

    def test_importance_weights_scale_rows(self):
        log_p = Tensor(np.log(np.full((2, 4), 0.25)))
        target = np.full((2, 4), 0.25)
        unweighted = categorical_cross_entropy(log_p, target).item()
        weighted = categorical_cross_entropy(
            log_p, target, weights=np.array([2.0, 0.0])
        ).item()
        assert weighted == pytest.approx(unweighted)

    def test_gradient_flows_to_logits(self):
        logits = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        target = rng.dirichlet(np.ones(5), size=3)
        loss = categorical_cross_entropy(logits.log_softmax(), target)
        loss.backward()
        assert logits.grad is not None
        # gradient of CE wrt logits is (softmax - target) / batch
        expected = (
            np.exp(Tensor(logits.data).log_softmax().data) - target
        ) / 3.0
        assert np.allclose(logits.grad, expected, atol=1e-8)


class TestGRUCell:
    def test_output_shape(self):
        cell = GRUCell(6, 11, rng=rng)
        h = cell(Tensor(rng.normal(size=(4, 6))), cell.initial_state(4))
        assert h.shape == (4, 11)

    def test_initial_state_is_zero(self):
        cell = GRUCell(3, 5, rng=rng)
        assert not cell.initial_state(2).data.any()

    def test_hidden_state_bounded(self):
        # h is a convex combination of tanh outputs, so |h| <= 1 from h0=0
        cell = GRUCell(4, 8, rng=rng)
        h = cell.initial_state(5)
        for _ in range(20):
            h = cell(Tensor(rng.normal(size=(5, 4)) * 10), h)
        assert (np.abs(h.data) <= 1.0 + 1e-9).all()

    def test_gradients_flow_through_time(self):
        cell = GRUCell(3, 4, rng=rng)
        h = cell.initial_state(2)
        xs = [Tensor(rng.normal(size=(2, 3))) for _ in range(5)]
        for x in xs:
            h = cell(x, h)
        (h * h).sum().backward()
        for _, p in cell.named_parameters():
            assert p.grad is not None
            assert np.isfinite(p.grad).all()

    def test_gradcheck_single_step(self):
        cell = GRUCell(3, 4, rng=np.random.default_rng(3))
        x = rng.normal(size=(2, 3))
        weight = cell.candidate.weight

        def forward_loss() -> float:
            h = cell(Tensor(x), cell.initial_state(2))
            return float((h.data * h.data).sum())

        cell.zero_grad()
        h = cell(Tensor(x, requires_grad=True), cell.initial_state(2))
        (h * h).sum().backward()
        numeric = numeric_grad(lambda: forward_loss(), weight.data)
        assert np.allclose(weight.grad, numeric, atol=1e-5)


class TestGRU:
    def test_final_state_shape(self):
        gru = GRU(5, 7, rng=rng)
        out = gru(Tensor(rng.normal(size=(3, 6, 5))))
        assert out.shape == (3, 7)

    def test_sequence_output_shape(self):
        gru = GRU(5, 7, rng=rng)
        out = gru(Tensor(rng.normal(size=(3, 6, 5))), return_sequence=True)
        assert out.shape == (3, 6, 7)

    def test_sequence_final_matches_final_state(self):
        gru = GRU(4, 6, rng=rng)
        x = Tensor(rng.normal(size=(2, 5, 4)))
        seq = gru(x, return_sequence=True)
        final = gru(x)
        assert np.allclose(seq.data[:, -1, :], final.data)

    def test_rejects_non_sequence_input(self):
        gru = GRU(4, 6, rng=rng)
        with pytest.raises(ValueError):
            gru(Tensor(rng.normal(size=(2, 4))))

    def test_order_sensitivity(self):
        """A recurrent net must distinguish permuted histories."""
        gru = GRU(3, 8, rng=rng)
        x = rng.normal(size=(1, 6, 3))
        out_fwd = gru(Tensor(x)).data
        out_rev = gru(Tensor(x[:, ::-1, :].copy())).data
        assert not np.allclose(out_fwd, out_rev)

    def test_trainable_on_toy_memory_task(self):
        """Predict the first input of a sequence from the final state."""
        gru = GRU(1, 8, rng=np.random.default_rng(0))
        from repro.nn import Linear

        head = Linear(8, 1, rng=np.random.default_rng(1))
        params = gru.parameters() + head.parameters()
        opt = Adam(params, lr=3e-2)
        data_rng = np.random.default_rng(42)
        losses = []
        for _ in range(120):
            x = data_rng.choice([-1.0, 1.0], size=(16, 4, 1))
            target = x[:, 0, 0]
            opt.zero_grad()
            pred = head(gru(Tensor(x))).reshape(16)
            loss = ((pred - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-10:]) < 0.25 * np.mean(losses[:10])


class TestNoisyLinear:
    def test_output_shape(self):
        layer = NoisyLinear(4, 9, rng=rng)
        assert layer(Tensor(rng.normal(size=(3, 4)))).shape == (3, 9)

    def test_noise_changes_output(self):
        layer = NoisyLinear(4, 6, rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(2, 4)))
        out1 = layer(x).data.copy()
        layer.reset_noise()
        out2 = layer(x).data.copy()
        assert not np.allclose(out1, out2)

    def test_disabled_noise_is_deterministic_mean(self):
        layer = NoisyLinear(4, 6, rng=np.random.default_rng(1))
        layer.noise_enabled = False
        x = Tensor(rng.normal(size=(2, 4)))
        out1 = layer(x).data.copy()
        layer.reset_noise()
        out2 = layer(x).data.copy()
        assert np.allclose(out1, out2)
        expected = x.data @ layer.weight_mu.data + layer.bias_mu.data
        assert np.allclose(out1, expected)

    def test_sigma_parameters_receive_gradient(self):
        layer = NoisyLinear(4, 6, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        (out * out).sum().backward()
        assert layer.weight_sigma.grad is not None
        assert np.abs(layer.weight_sigma.grad).sum() > 0

    def test_parameter_count(self):
        layer = NoisyLinear(4, 6, rng=rng)
        # mu and sigma for both weight and bias
        assert layer.n_parameters() == 2 * (4 * 6) + 2 * 6

    def test_mean_sigma_positive_at_init(self):
        assert NoisyLinear(8, 8, rng=rng).mean_sigma > 0


class TestNoisyLinearProperties:
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_shapes(self, n_in, n_out, batch):
        layer = NoisyLinear(n_in, n_out, rng=np.random.default_rng(0))
        x = Tensor(np.ones((batch, n_in)))
        assert layer(x).shape == (batch, n_out)

    @given(st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_noise_is_properly_scaled(self, seed):
        """Factorized noise entries are sign(x)sqrt|x| products; their
        magnitude distribution must stay finite and centered."""
        layer = NoisyLinear(16, 16, rng=np.random.default_rng(seed))
        assert np.isfinite(layer._eps_w).all()
        assert abs(float(layer._eps_w.mean())) < 2.0
