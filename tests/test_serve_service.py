"""Tests for the evaluation service: job validation, the HTTP surface,
the shared pool, backpressure, cancellation, and graceful shutdown."""

import asyncio
import queue
import threading
import time

import pytest

from repro.serve import (
    EvalService,
    ServeClient,
    ServeNotFoundError,
    ServeQueueFullError,
    ServeRequestError,
    ServeServer,
    ServiceClosedError,
    parse_job,
)
from repro.serve.jobs import JobError
from repro.serve.store import RunStore

TINY = "inasim-tiny-v1"


# ----------------------------------------------------------------------
# payload validation (no server needed)
# ----------------------------------------------------------------------
class TestParseJob:
    def test_minimal(self):
        request = parse_job({"scenario": TINY})
        assert request.kind == "evaluate"
        assert request.policy == "playbook"
        assert request.scenario_label == TINY

    def test_inline_spec(self):
        from repro.scenarios import get_scenario
        from repro.scenarios.serialization import spec_to_dict

        payload = {"spec": spec_to_dict(get_scenario(TINY)), "seed": 5}
        request = parse_job(payload)
        assert request.resolve_spec().scenario_id == TINY

    @pytest.mark.parametrize("payload,match", [
        ({}, "exactly one of"),
        ({"scenario": TINY, "spec": {}}, "exactly one of"),
        ({"scenario": TINY, "kind": "train"}, "unknown job kind"),
        ({"scenario": TINY, "policy": "magic"}, "unknown policy"),
        ({"scenario": TINY, "policy": "expert"}, "needs a 'dbn'"),
        ({"scenario": TINY, "episodes": 0}, "positive integer"),
        ({"scenario": TINY, "episodes": "two"}, "positive integer"),
        ({"scenario": TINY, "num_envs": -1}, "positive integer"),
        ({"scenario": TINY, "backend": "gpu"}, "unknown backend"),
        ({"scenario": TINY, "tags": "prod"}, "list of strings"),
        ({"scenario": TINY, "frobnicate": 1}, "unknown job fields"),
        ({"spec": {"bogus": True}}, "invalid inline spec"),
        ({"scenario": TINY, "kind": "selfplay", "cem_population": 1},
         "cem_population"),
    ])
    def test_rejections(self, payload, match):
        with pytest.raises(JobError, match=match):
            parse_job(payload)

    def test_to_payload_round_trip(self):
        payload = {"kind": "selfplay", "scenario": TINY, "seed": 9,
                   "cem_population": 6, "tags": ["t"]}
        assert parse_job(parse_job(payload).to_payload()).to_payload() \
            == parse_job(payload).to_payload()


# ----------------------------------------------------------------------
# a live server on an ephemeral port, driven from the test thread
# ----------------------------------------------------------------------
class ServerHandle:
    """Runs ServeServer inside a dedicated event-loop thread."""

    def __init__(self, db_path, **service_kwargs):
        self.db_path = str(db_path)
        self.service_kwargs = service_kwargs
        self.service = None
        self.client = None
        self._ready = queue.Queue()
        self._stopped = False
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.service = EvalService(self.db_path, **self.service_kwargs)
            server = ServeServer(self.service, port=0)
            await server.start()
            self._ready.put(server.port)
            await server.serve_forever()

        try:
            asyncio.run(main())
        except BaseException as exc:  # pragma: no cover
            self._ready.put(exc)

    def __enter__(self):
        self._thread.start()
        port = self._ready.get(timeout=30)
        if isinstance(port, BaseException):
            raise port
        self.client = ServeClient(port=port, timeout=30)
        return self

    def __exit__(self, *exc_info):
        if self._stopped:
            return
        self._stopped = True
        try:
            self.client.shutdown()
        except OSError:
            pass
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server failed to drain"


@pytest.fixture()
def server(tmp_path):
    with ServerHandle(tmp_path / "runs.sqlite", max_queue=8) as handle:
        yield handle


class TestServeEndToEnd:
    def test_health(self, server):
        health = server.client.health()
        assert health["status"] == "ok"
        assert health["max_queue"] == 8
        assert health["pool"] == {"spawns": 0, "reuses": 0, "live_pools": 0}

    def test_served_evaluation_matches_one_shot(self, server):
        """The acceptance bar: served == one-shot, bit for bit."""
        from repro.defenders import PlaybookPolicy
        from repro.eval import evaluate_policy
        from repro.scenarios import get_scenario

        job = server.client.submit({
            "kind": "evaluate", "scenario": TINY, "policy": "playbook",
            "episodes": 3, "seed": 11, "max_steps": 40,
        })
        done = server.client.wait(job["job_id"], timeout=120)
        assert done["progress"] == {"completed": 3, "total": 3}

        # the one-shot reference, exactly as the CLI resolves it:
        # --max-steps folds into the config horizon before building
        spec = get_scenario(TINY)
        config = spec.build_config()
        config = config.with_tmax(min(config.tmax, 40))
        env = spec.build_env(config=config, seed=11)
        aggregate, records = evaluate_policy(
            env, PlaybookPolicy(), 3, seed=11, max_steps=40)
        served = done["metrics"]
        for name in ("discounted_return", "final_plcs_offline",
                     "avg_it_cost", "avg_nodes_compromised"):
            assert served[name] == list(getattr(aggregate, name))

        # per-episode rows carry the seeds and wall times
        run = server.client.run(job["job_id"])
        seeds = [e["seed"] for e in run["episode_records"]]
        assert seeds == [11, 12, 13]
        assert all(e["wall_time"] > 0 for e in run["episode_records"])
        assert [e["detail"]["discounted_return"]
                for e in run["episode_records"]] \
            == [r.discounted_return for r in records]

    def test_vectorized_job_matches_single(self, server):
        argv = {"kind": "evaluate", "scenario": TINY, "policy": "playbook",
                "episodes": 2, "seed": 3, "max_steps": 30}
        single = server.client.wait(
            server.client.submit(argv)["job_id"], timeout=120)
        vec = server.client.wait(
            server.client.submit({**argv, "num_envs": 2,
                                  "backend": "sync"})["job_id"], timeout=120)
        assert single["metrics"] == vec["metrics"]

    def test_selfplay_job(self, server):
        job = server.client.submit({
            "kind": "selfplay", "scenario": TINY, "policy": "playbook",
            "seed": 1, "cem_iterations": 1, "cem_population": 2,
            "fitness_episodes": 1, "max_steps": 15,
        })
        done = server.client.wait(job["job_id"], timeout=300)
        metrics = done["metrics"]
        assert metrics["evaluations"] == 2
        assert metrics["exploitability"] == pytest.approx(
            metrics["best_response_utility"] - metrics["baseline_utility"])
        run = server.client.run(job["job_id"])
        assert len(run["episode_records"]) == 1  # one CEM generation
        assert run["episode_records"][0]["detail"]["candidates"] == 2

    def test_bad_payload_is_400(self, server):
        with pytest.raises(ServeRequestError):
            server.client.submit({"scenario": TINY, "policy": "magic"})
        with pytest.raises(ServeRequestError):
            server.client.submit({})

    def test_unknown_ids_are_404(self, server):
        with pytest.raises(ServeNotFoundError):
            server.client.job("nope")
        with pytest.raises(ServeNotFoundError):
            server.client.run("nope")
        with pytest.raises(ServeNotFoundError):
            server.client._request("GET", "/bogus")

    def test_failed_job_lands_as_error_run(self, server):
        job = server.client.submit({"scenario": "no-such-scenario-v0"})
        done = server.client.wait(job["job_id"], timeout=60,
                                  raise_on_failure=False)
        assert done["status"] == "error"
        assert "unknown scenario" in done["error"]
        assert server.client.run(job["job_id"])["status"] == "error"

    def test_runs_survive_restart(self, server, tmp_path):
        job = server.client.submit({"scenario": TINY, "episodes": 1,
                                    "max_steps": 10, "tags": ["restart"]})
        server.client.wait(job["job_id"], timeout=60)
        server.__exit__()  # full drain + store close

        # cold reopen: the run is still there, queryable by tag
        with RunStore(server.db_path) as store:
            rows = store.list_runs(tag="restart")
            assert len(rows) == 1
            assert rows[0]["run_id"] == job["job_id"]
            assert rows[0]["status"] == "done"
            assert rows[0]["metrics"] is not None

        # restart a fresh server on the same store; history intact
        with ServerHandle(server.db_path) as reborn:
            runs = reborn.client.runs(tag="restart")
            assert [r["run_id"] for r in runs] == [job["job_id"]]


class TestBackpressureAndCancel:
    def _slow_payload(self, seed=0):
        return {"kind": "evaluate", "scenario": TINY, "policy": "playbook",
                "episodes": 500, "seed": seed}

    def _wait_status(self, client, job_id, status, timeout=30):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if client.job(job_id)["status"] == status:
                return
            time.sleep(0.02)
        raise AssertionError(f"job {job_id} never reached {status!r}")

    def test_queue_overflow_rejected_not_deadlocked(self, tmp_path):
        with ServerHandle(tmp_path / "runs.sqlite", max_queue=2) as server:
            client = server.client
            blocker = client.submit(self._slow_payload())
            self._wait_status(client, blocker["job_id"], "running")
            queued = [client.submit(self._slow_payload(seed=s))
                      for s in (1, 2)]
            with pytest.raises(ServeQueueFullError):
                client.submit(self._slow_payload(seed=3))
            assert client.health()["queue_depth"] == 2

            # cancelling clears the backlog; the server is not wedged
            for job in (blocker, *queued):
                client.cancel(job["job_id"])
            for job in (blocker, *queued):
                done = client.wait(job["job_id"], timeout=60,
                                   raise_on_failure=False)
                assert done["status"] == "cancelled"
            accepted = client.submit({"scenario": TINY, "episodes": 1,
                                      "max_steps": 10})
            client.wait(accepted["job_id"], timeout=60)

    def test_cancelled_run_recorded(self, tmp_path):
        with ServerHandle(tmp_path / "runs.sqlite") as server:
            client = server.client
            job = client.submit(self._slow_payload())
            self._wait_status(client, job["job_id"], "running")
            client.cancel(job["job_id"])
            done = client.wait(job["job_id"], timeout=60,
                               raise_on_failure=False)
            assert done["status"] == "cancelled"
            run = client.run(job["job_id"])
            assert run["status"] == "cancelled"
            # the episodes that did finish before the flag are recorded
            assert len(run["episode_records"]) == done["progress"]["completed"]

    def test_shutdown_rejects_new_jobs(self, tmp_path):
        server = ServerHandle(tmp_path / "runs.sqlite").__enter__()
        try:
            service = server.service
            job = server.client.submit({"scenario": TINY, "episodes": 1,
                                        "max_steps": 10})
            server.client.wait(job["job_id"], timeout=60)
        finally:
            server.__exit__()
        with pytest.raises(ServiceClosedError):
            service.submit({"scenario": TINY})
        # graceful shutdown closed the owned pool and the store
        assert service.pool.stats["live_pools"] == 0
        assert service._executor._shutdown


class TestSharedPool:
    def test_eight_jobs_one_pool(self, tmp_path):
        """Acceptance bar: >= 8 simultaneous pooled jobs, ONE pool."""
        import multiprocessing

        before = {p.pid for p in multiprocessing.active_children()}
        with ServerHandle(tmp_path / "runs.sqlite", max_queue=16,
                          default_backend="process") as server:
            client = server.client
            jobs = [client.submit({
                "kind": "evaluate", "scenario": TINY, "policy": "playbook",
                "episodes": 1, "seed": s, "max_steps": 15,
                "num_envs": 2, "num_workers": 2,
            }) for s in range(8)]
            for job in jobs:
                done = client.wait(job["job_id"], timeout=300)
                assert done["status"] == "done"
            pool = client.health()["pool"]
            assert pool["spawns"] == 1, pool
            assert pool["reuses"] == 7, pool
            assert pool["live_pools"] == 1, pool

            # all eight runs landed in the store with distinct seeds
            runs = client.runs(kind="evaluate", limit=20)
            assert sorted(r["seed"] for r in runs) == list(range(8))
        # drain left no orphaned worker processes behind
        leaked = {p.pid for p in multiprocessing.active_children()} - before
        assert not leaked


class TestServeSmoke:
    """The CI smoke-tier job: in-process server, tiny-net submission,
    poll to completion, assert the run row — all under a hard timeout."""

    def test_smoke(self, tmp_path):
        deadline = time.monotonic() + 120  # hard cap
        with ServerHandle(tmp_path / "runs.sqlite") as server:
            job = server.client.submit({
                "kind": "evaluate", "scenario": TINY, "policy": "playbook",
                "episodes": 1, "seed": 0, "max_steps": 10,
            })
            done = server.client.wait(
                job["job_id"], timeout=max(1.0, deadline - time.monotonic()))
            assert done["status"] == "done"
            run = server.client.run(job["job_id"])
            assert run["status"] == "done"
            assert run["metrics"]["discounted_return"][0] != 0
        assert time.monotonic() < deadline
