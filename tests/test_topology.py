"""Tests for the network substrate: nodes, devices, topology, paths."""

import pytest

from repro.config import IDSConfig, TopologyConfig, paper_network
from repro.net import (
    Condition,
    CONDITION_PREREQS,
    DeviceType,
    NodeType,
    ServerRole,
    build_topology,
)
from repro.net.topology import L1_OPS, L1_QUAR, L2_OPS, L2_QUAR


@pytest.fixture(scope="module")
def topo():
    return build_topology(paper_network().topology)


class TestConditions:
    def test_six_conditions(self):
        assert len(Condition) == 6

    def test_prereq_chain_matches_table1(self):
        assert CONDITION_PREREQS[Condition.SCANNED] is None
        assert CONDITION_PREREQS[Condition.COMPROMISED] is Condition.SCANNED
        assert CONDITION_PREREQS[Condition.REBOOT_PERSIST] is Condition.COMPROMISED
        assert CONDITION_PREREQS[Condition.ADMIN] is Condition.COMPROMISED
        assert CONDITION_PREREQS[Condition.CRED_PERSIST] is Condition.ADMIN
        assert CONDITION_PREREQS[Condition.CLEANED] is Condition.ADMIN


class TestBuildTopology:
    def test_node_counts(self, topo):
        assert topo.n_nodes == 33
        assert topo.n_plcs == 50
        assert len(topo.nodes_of_type(NodeType.WORKSTATION)) == 25
        assert len(topo.nodes_of_type(NodeType.SERVER)) == 3
        assert len(topo.nodes_of_type(NodeType.HMI)) == 5

    def test_levels(self, topo):
        for node in topo.nodes:
            expected = 1 if node.ntype is NodeType.HMI else 2
            assert node.level == expected

    def test_server_roles_present(self, topo):
        assert topo.server(ServerRole.OPC) is not None
        assert topo.server(ServerRole.HISTORIAN) is not None
        assert topo.server(ServerRole.DOMAIN_CONTROLLER) is not None
        assert topo.server(ServerRole.NONE) is None or True

    def test_unique_ips(self, topo):
        ips = [n.ip for n in topo.nodes] + [p.ip for p in topo.plcs] + [
            d.ip for d in topo.devices
        ]
        assert len(ips) == len(set(ips))

    def test_four_vlans_two_quarantine(self, topo):
        assert set(topo.vlans) == {L2_OPS, L2_QUAR, L1_OPS, L1_QUAR}
        assert topo.vlans[L2_QUAR].quarantine
        assert topo.vlans[L1_QUAR].quarantine
        assert not topo.vlans[L2_OPS].quarantine

    def test_device_types(self, topo):
        kinds = [d.dtype for d in topo.devices]
        assert kinds.count(DeviceType.SWITCH) == 4
        assert kinds.count(DeviceType.ROUTER) == 2
        assert kinds.count(DeviceType.FIREWALL) == 1

    def test_plcs_on_l1_ops(self, topo):
        assert all(p.vlan == L1_OPS for p in topo.plcs)

    def test_ops_vlans(self, topo):
        assert set(topo.ops_vlans()) == {L2_OPS, L1_OPS}

    def test_quarantine_vlan_for(self, topo):
        ws = topo.nodes_of_type(NodeType.WORKSTATION)[0]
        hmi = topo.nodes_of_type(NodeType.HMI)[0]
        assert topo.quarantine_vlan_for(ws) == L2_QUAR
        assert topo.quarantine_vlan_for(hmi) == L1_QUAR


class TestMessagePaths:
    def test_same_vlan_single_switch(self, topo):
        devices = topo.path_devices(L2_OPS, L2_OPS)
        assert len(devices) == 1
        assert devices[0].dtype is DeviceType.SWITCH

    def test_cross_vlan_same_level(self, topo):
        devices = topo.path_devices(L2_OPS, L2_QUAR)
        kinds = [d.dtype for d in devices]
        assert kinds == [DeviceType.SWITCH, DeviceType.ROUTER, DeviceType.SWITCH]

    def test_cross_level_passes_firewall(self, topo):
        kinds = [d.dtype for d in topo.path_devices(L2_OPS, L1_OPS)]
        assert kinds.count(DeviceType.FIREWALL) == 1
        assert kinds.count(DeviceType.ROUTER) == 2
        assert kinds.count(DeviceType.SWITCH) == 2

    def test_alert_factors(self, topo):
        ids = IDSConfig()
        assert topo.alert_factor(L2_OPS, L2_OPS, ids) == pytest.approx(1.0)
        assert topo.alert_factor(L2_OPS, L2_QUAR, ids) == pytest.approx(2.0)
        # cross level: switch * router * firewall * router * switch = 20
        assert topo.alert_factor(L2_OPS, L1_OPS, ids) == pytest.approx(20.0)

    def test_alert_factor_symmetric(self, topo):
        ids = IDSConfig()
        assert topo.alert_factor(L1_OPS, L2_OPS, ids) == topo.alert_factor(
            L2_OPS, L1_OPS, ids
        )

    def test_custom_device_factors(self, topo):
        ids = IDSConfig(switch_factor=1.0, router_factor=3.0, firewall_factor=7.0)
        assert topo.alert_factor(L2_OPS, L1_OPS, ids) == pytest.approx(63.0)


class TestReachability:
    def test_ops_to_ops_reachable(self, topo):
        assert topo.reachable(L2_OPS, L1_OPS)
        assert topo.reachable(L1_OPS, L2_OPS)

    def test_quarantine_blocks_traffic(self, topo):
        assert not topo.reachable(L2_OPS, L2_QUAR)
        assert not topo.reachable(L2_QUAR, L2_OPS)
        assert not topo.reachable(L2_QUAR, L1_OPS)

    def test_same_quarantine_loopback(self, topo):
        assert topo.reachable(L2_QUAR, L2_QUAR)


class TestNodesInVlan:
    def test_follows_dynamic_assignment(self, topo):
        vlans = [n.home_vlan for n in topo.nodes]
        node0 = topo.nodes[0].node_id
        assert node0 in topo.nodes_in_vlan(L2_OPS, vlans)
        vlans[node0] = L2_QUAR
        assert node0 not in topo.nodes_in_vlan(L2_OPS, vlans)
        assert node0 in topo.nodes_in_vlan(L2_QUAR, vlans)

    def test_scaled_topology(self):
        topo = build_topology(TopologyConfig(l2_workstations=2, plcs=3, l1_hmis=1))
        assert topo.n_nodes == 6
        assert topo.n_plcs == 3
