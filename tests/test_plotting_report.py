"""Tests for ASCII plotting and markdown report generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import EpisodeMetrics, aggregate
from repro.eval.plotting import bar_chart, series_plot, sparkline
from repro.eval.report import experiment_report, markdown_sweep, markdown_table


def _aggregate(returns):
    return aggregate([
        EpisodeMetrics(
            discounted_return=r, final_plcs_offline=0, avg_it_cost=0.1,
            avg_nodes_compromised=1.0, steps=10, seed=i,
        )
        for i, r in enumerate(returns)
    ])


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = bar_chart(["ACSO", "Playbook"], [0.15, 0.21],
                         title="IT cost")
        assert "IT cost" in text
        assert "ACSO" in text and "Playbook" in text
        assert "0.15" in text and "0.21" in text

    def test_larger_value_longer_bar(self):
        text = bar_chart(["a", "b"], [1.0, 4.0])
        bar_a, bar_b = (line.count("█") for line in text.split("\n"))
        assert bar_b > bar_a

    def test_zero_values_have_no_bar(self):
        lines = bar_chart(["a", "b"], [0.0, 2.0]).split("\n")
        assert lines[0].count("█") == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([], [])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_never_crashes_on_finite_values(self, values):
        labels = [f"v{i}" for i in range(len(values))]
        text = bar_chart(labels, values)
        assert len(text.split("\n")) == len(values)


class TestSeriesPlot:
    def test_structure(self):
        text = series_plot(
            [0.1, 0.5, 0.9],
            {"ACSO": [0, 0, 1], "Playbook": [0, 2, 13]},
            title="Fig 6a", height=8, width=30,
        )
        assert "Fig 6a" in text
        assert "o ACSO" in text and "x Playbook" in text
        assert "13.00" in text  # y max label

    def test_all_markers_present(self):
        text = series_plot([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "o" in text and "x" in text

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError):
            series_plot([0, 1], {"a": [1.0]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            series_plot([], {})

    def test_flat_series_does_not_divide_by_zero(self):
        text = series_plot([0, 1, 2], {"flat": [3.0, 3.0, 3.0]})
        assert "flat" in text


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_becomes_blank(self):
        assert " " in sparkline([1.0, float("nan"), 2.0])


class TestMarkdownReport:
    def test_table_structure(self):
        table = markdown_table({"ACSO": _aggregate([2100, 2150])})
        lines = table.split("\n")
        assert lines[0].startswith("| Policy |")
        assert lines[1].startswith("|---")
        assert "ACSO" in lines[2]
        assert "±" in lines[2]

    def test_table_rejects_empty(self):
        with pytest.raises(ValueError):
            markdown_table({})

    def test_sweep_layout(self):
        sweep = {
            0.1: {"ACSO": _aggregate([2100])},
            0.9: {"ACSO": _aggregate([1800])},
        }
        text = markdown_sweep(sweep, "discounted_return", "cleanup")
        assert "| Policy (cleanup) | 0.1 | 0.9 |" in text
        assert "2100" in text and "1800" in text

    def test_report_assembly(self):
        report = experiment_report(
            "Table 2",
            "Nominal evaluation.",
            {"Results": markdown_table({"A": _aggregate([1.0])})},
            episodes=100,
        )
        assert report.startswith("# Table 2")
        assert "## Results" in report
        assert "100 episodes per cell" in report

    def test_report_without_episode_count(self):
        report = experiment_report("T", "d", {})
        assert "episodes per cell" not in report
