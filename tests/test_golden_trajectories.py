"""Golden-trajectory regression anchors for the simulation dynamics.

Every built-in scenario carries a committed digest of a seeded 32-step
playbook rollout (``tests/golden/*.json``): per-step rewards, done
flags, alert counts, action-mask hashes, and observation hashes. The
engine is load-bearing for three vector backends and the adversarial
search, so an optimization pass that changes the dynamics — not just
code shape — must fail loudly here, and an intentional
trajectory-distribution change must regenerate the fixtures
(``PYTHONPATH=src python tests/golden/regenerate.py``) and say so.
"""

import importlib.util
import json
import pathlib

import pytest

import repro

# the regeneration script doubles as the digest library; tests/ is not
# a package, so load it by path
_spec = importlib.util.spec_from_file_location(
    "golden_regenerate",
    pathlib.Path(__file__).parent / "golden" / "regenerate.py",
)
_regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_regen)

GOLDEN_DIR = _regen.GOLDEN_DIR
STEPS = _regen.STEPS
fixture_path = _regen.fixture_path
rollout_digest = _regen.rollout_digest

BUILTIN_IDS = [spec.scenario_id for spec in repro.scenarios.BUILTIN_SCENARIOS]


def _load(scenario_id: str) -> dict:
    path = fixture_path(scenario_id)
    assert path.exists(), (
        f"missing golden fixture {path}; run "
        "`PYTHONPATH=src python tests/golden/regenerate.py`"
    )
    with open(path) as handle:
        return json.load(handle)


class TestGoldenCoverage:
    def test_every_builtin_scenario_has_a_fixture(self):
        assert len(BUILTIN_IDS) == 14  # the README catalogue
        missing = [sid for sid in BUILTIN_IDS
                   if not fixture_path(sid).exists()]
        assert not missing, f"missing golden fixtures for {missing}"

    def test_no_stale_fixtures(self):
        """Every committed fixture corresponds to a built-in scenario."""
        known = {fixture_path(sid).name for sid in BUILTIN_IDS}
        stale = [p.name for p in GOLDEN_DIR.glob("*.json")
                 if p.name not in known]
        assert not stale, f"stale golden fixtures: {stale}"


@pytest.mark.parametrize("scenario_id", BUILTIN_IDS)
def test_golden_trajectory(scenario_id):
    """Replaying the seeded rollout reproduces the committed digest.

    Comparisons are exact: rewards are deterministic floats given
    (config, seed), and JSON round-trips them via repr. A mismatch
    means the dynamics shifted — regenerate only if the shift is
    intentional.
    """
    golden = _load(scenario_id)
    fresh = rollout_digest(scenario_id, seed=golden["seed"],
                           steps=golden["steps"])

    assert fresh["rewards"] == golden["rewards"], (
        f"{scenario_id}: reward stream diverged from golden fixture"
    )
    assert fresh["dones"] == golden["dones"], (
        f"{scenario_id}: done flags diverged from golden fixture"
    )
    assert fresh["n_alerts"] == golden["n_alerts"], (
        f"{scenario_id}: alert stream diverged from golden fixture"
    )
    assert (fresh["action_mask_sha256_16"]
            == golden["action_mask_sha256_16"]), (
        f"{scenario_id}: action-mask stream diverged from golden fixture"
    )
    assert (fresh["observation_sha256_16"]
            == golden["observation_sha256_16"]), (
        f"{scenario_id}: observation stream diverged from golden fixture"
    )


def test_digest_is_seed_sensitive():
    """The fixture actually pins the seed: a different seed diverges
    (otherwise a broken reseed path could pass silently)."""
    golden = _load("inasim-tiny-v1")
    other = rollout_digest("inasim-tiny-v1", seed=golden["seed"] + 1,
                           steps=STEPS)
    assert other["observation_sha256_16"] != golden["observation_sha256_16"]
