"""Tests for NN modules, attention, conv, optimizers, and losses."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    AttentionBlock,
    Conv1d,
    LayerNorm,
    Linear,
    MLP,
    MultiHeadSelfAttention,
    SGD,
    Tensor,
    huber_loss,
    load_state,
    margin_loss,
    mse_loss,
    save_state,
)
from repro.nn.conv import unfold1d

rng = np.random.default_rng(5)


class TestLinearMLP:
    def test_linear_shapes(self):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_linear_broadcasts_over_leading_dims(self):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.normal(size=(2, 5, 4))))
        assert out.shape == (2, 5, 7)

    def test_mlp_depth(self):
        mlp = MLP([4, 8, 8, 2], rng=rng)
        assert len(mlp.linears) == 3
        assert mlp(Tensor(rng.normal(size=(3, 4)))).shape == (3, 2)

    def test_mlp_final_activation(self):
        mlp = MLP([4, 8, 2], final_act="tanh", rng=rng)
        out = mlp(Tensor(rng.normal(size=(10, 4)) * 100))
        assert (np.abs(out.data) <= 1.0).all()

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_layernorm_normalizes(self):
        ln = LayerNorm(16)
        out = ln(Tensor(rng.normal(loc=5.0, scale=3.0, size=(4, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)


class TestStateDict:
    def test_roundtrip(self, tmp_path):
        mlp = MLP([3, 5, 2], rng=np.random.default_rng(1))
        x = rng.normal(size=(4, 3))
        before = mlp(Tensor(x)).data
        save_state(mlp, tmp_path / "m.npz", step=7)
        fresh = MLP([3, 5, 2], rng=np.random.default_rng(99))
        meta = load_state(fresh, tmp_path / "m.npz")
        assert np.allclose(fresh(Tensor(x)).data, before)
        assert int(meta["step"]) == 7

    def test_mismatch_raises(self):
        a = MLP([3, 5, 2], rng=rng)
        b = MLP([3, 6, 2], rng=rng)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_n_parameters(self):
        mlp = MLP([3, 5, 2], rng=rng)
        assert mlp.n_parameters() == 3 * 5 + 5 + 5 * 2 + 2


class TestAttention:
    def test_shapes_2d_and_3d(self):
        attn = MultiHeadSelfAttention(8, n_heads=2, rng=rng)
        assert attn(Tensor(rng.normal(size=(5, 8)))).shape == (5, 8)
        assert attn(Tensor(rng.normal(size=(3, 5, 8)))).shape == (3, 5, 8)

    def test_head_divisibility_check(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(9, n_heads=2)

    def test_permutation_equivariance(self):
        """Attention is the paper's exchangeability device: permuting
        node tokens permutes outputs identically."""
        attn = MultiHeadSelfAttention(8, n_heads=2, rng=np.random.default_rng(3))
        x = rng.normal(size=(6, 8))
        perm = np.random.default_rng(0).permutation(6)
        out = attn(Tensor(x)).data
        out_perm = attn(Tensor(x[perm])).data
        assert np.allclose(out[perm], out_perm, atol=1e-10)

    def test_block_residual_shape(self):
        block = AttentionBlock(8, n_heads=2, rng=rng)
        assert block(Tensor(rng.normal(size=(2, 4, 8)))).shape == (2, 4, 8)


class TestConv1d:
    def test_unfold_matches_manual(self):
        x = rng.normal(size=(1, 2, 6))
        windows = unfold1d(Tensor(x), kernel=3, stride=1)
        assert windows.shape == (1, 4, 6)
        manual = np.concatenate([x[0, :, 0:3].reshape(-1), ], axis=0)
        assert np.allclose(windows.data[0, 0], manual)

    def test_output_length(self):
        conv = Conv1d(3, 5, kernel=4, stride=4, rng=rng)
        out = conv(Tensor(rng.normal(size=(2, 3, 64))))
        assert out.shape == (2, 5, 16)

    def test_matches_direct_convolution(self):
        conv = Conv1d(2, 1, kernel=2, stride=1, rng=rng)
        x = rng.normal(size=(1, 2, 4))
        out = conv(Tensor(x)).data
        w = conv.weight.data  # (C_in*K, C_out)
        for t in range(3):
            window = x[0, :, t:t + 2].reshape(-1)
            expected = window @ w[:, 0] + conv.bias.data[0]
            assert np.isclose(out[0, 0, t], expected)

    def test_too_small_input_raises(self):
        conv = Conv1d(1, 1, kernel=8, stride=1, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(rng.normal(size=(1, 1, 4))))


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 3.0])
        w = Tensor(np.zeros(3), requires_grad=True)
        w.__class__ = __import__("repro.nn.modules", fromlist=["Parameter"]).Parameter
        return w, target

    def test_sgd_converges_on_quadratic(self):
        from repro.nn.modules import Parameter

        w = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 3.0])
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = ((w - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_adam_converges_on_quadratic(self):
        from repro.nn.modules import Parameter

        w = Parameter(np.zeros(3))
        target = np.array([1.0, -2.0, 3.0])
        opt = Adam([w], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            ((w - Tensor(target)) ** 2).sum().backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-2)

    def test_grad_clip_bounds_update(self):
        from repro.nn.modules import Parameter

        w = Parameter(np.zeros(3))
        opt = Adam([w], lr=0.1, grad_clip=1.0)
        w.grad = np.array([1e6, 1e6, 1e6])
        clipped = opt._clipped_grads()[0]
        assert np.sqrt((clipped ** 2).sum()) <= 1.0 + 1e-9

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestLosses:
    def test_huber_quadratic_region(self):
        pred = Tensor(np.array([0.5]), requires_grad=True)
        loss = huber_loss(pred, np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.5 * 0.25)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        loss = huber_loss(pred, np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(3.0 - 0.5)

    def test_huber_importance_weights(self):
        pred = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        unweighted = huber_loss(pred, np.zeros(2))
        weighted = huber_loss(pred, np.zeros(2), weights=np.array([2.0, 0.0]))
        assert weighted.item() == pytest.approx(unweighted.item() * 2 / 2)

    def test_mse(self):
        pred = Tensor(np.array([2.0, 0.0]), requires_grad=True)
        assert mse_loss(pred, np.zeros(2)).item() == pytest.approx(2.0)

    def test_margin_loss_zero_when_expert_dominates(self):
        q = np.array([[2.0, 0.0, 0.0]])
        loss = margin_loss(Tensor(q, requires_grad=True), [0], margin=0.05)
        assert loss.item() == pytest.approx(0.0)

    def test_margin_loss_penalizes_wrong_argmax(self):
        q = np.array([[0.0, 1.0, 0.0]])
        loss = margin_loss(Tensor(q, requires_grad=True), [0], margin=0.05)
        assert loss.item() == pytest.approx(1.05)
