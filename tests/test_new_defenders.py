"""Tests for the scheduled-sweep and belief-threshold defenders."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.defenders import ScheduledSweepPolicy, ThresholdPolicy
from repro.eval import run_episode
from repro.sim.observations import Observation, ScanResult
from repro.sim.orchestrator import DefenderActionType

_T = DefenderActionType


def _obs(t, n_nodes=6, n_plcs=4, scan_results=(), disrupted=(), destroyed=()):
    plc_disrupted = np.zeros(n_plcs, bool)
    plc_destroyed = np.zeros(n_plcs, bool)
    for p in disrupted:
        plc_disrupted[p] = True
    for p in destroyed:
        plc_destroyed[p] = True
    return Observation(
        t=t,
        scan_results=list(scan_results),
        plc_disrupted=plc_disrupted,
        plc_destroyed=plc_destroyed,
        node_busy=np.zeros(n_nodes, bool),
        plc_busy=np.zeros(n_plcs, bool),
        quarantined=np.zeros(n_nodes, bool),
    )


@pytest.fixture()
def sweep_policy(tiny_env):
    policy = ScheduledSweepPolicy(period=10, batch=2)
    policy.reset(tiny_env)
    return policy


class TestScheduledSweep:
    def test_scans_on_schedule(self, sweep_policy):
        actions = sweep_policy.act(_obs(t=10))
        scans = [a for a in actions if a.atype is _T.SIMPLE_SCAN]
        assert len(scans) == 2
        assert [a.target for a in scans] == [0, 1]

    def test_idle_off_schedule(self, sweep_policy):
        assert sweep_policy.act(_obs(t=7)) == []

    def test_round_robin_covers_all_nodes(self, sweep_policy):
        targets = []
        for k in range(1, 4):
            actions = sweep_policy.act(_obs(t=10 * k))
            targets.extend(a.target for a in actions)
        assert targets == [0, 1, 2, 3, 4, 5]

    def test_detection_triggers_ladder(self, sweep_policy):
        hit = ScanResult(t=10, node_id=3, detected=True,
                         action_type=_T.SIMPLE_SCAN)
        first = sweep_policy.act(_obs(t=11, scan_results=[hit]))
        assert any(a.atype is _T.REBOOT and a.target == 3 for a in first)
        second = sweep_policy.act(
            _obs(t=20, scan_results=[ScanResult(20, 3, True, _T.SIMPLE_SCAN)])
        )
        assert any(a.atype is _T.RESET_PASSWORD and a.target == 3
                   for a in second)
        third = sweep_policy.act(
            _obs(t=31, scan_results=[ScanResult(31, 3, True, _T.SIMPLE_SCAN)])
        )
        assert any(a.atype is _T.REIMAGE and a.target == 3 for a in third)

    def test_escalation_decays_after_memory_window(self, tiny_env):
        policy = ScheduledSweepPolicy(period=1000, escalation_memory=50)
        policy.reset(tiny_env)
        policy.act(_obs(t=5, scan_results=[ScanResult(5, 2, True,
                                                      _T.SIMPLE_SCAN)]))
        # well past the memory window: the ladder restarts at reboot
        later = policy.act(_obs(t=200, scan_results=[
            ScanResult(200, 2, True, _T.SIMPLE_SCAN)
        ]))
        assert any(a.atype is _T.REBOOT and a.target == 2 for a in later)

    def test_negative_scans_do_not_escalate(self, sweep_policy):
        miss = ScanResult(t=11, node_id=3, detected=False,
                          action_type=_T.SIMPLE_SCAN)
        actions = sweep_policy.act(_obs(t=11, scan_results=[miss]))
        assert all(a.atype not in (_T.REBOOT, _T.RESET_PASSWORD, _T.REIMAGE)
                   for a in actions)

    def test_repairs_plcs_immediately(self, sweep_policy):
        actions = sweep_policy.act(_obs(t=3, disrupted=[1], destroyed=[2]))
        assert any(a.atype is _T.RESET_PLC and a.target == 1 for a in actions)
        assert any(a.atype is _T.REPLACE_PLC and a.target == 2
                   for a in actions)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ScheduledSweepPolicy(period=0)
        with pytest.raises(ValueError):
            ScheduledSweepPolicy(batch=0)
        with pytest.raises(ValueError):
            ScheduledSweepPolicy(scan=_T.REBOOT)

    def test_full_episode_runs(self, tiny_env):
        metrics = run_episode(tiny_env, ScheduledSweepPolicy(period=8),
                              seed=0, max_steps=100)
        assert np.isfinite(metrics.discounted_return)
        assert metrics.avg_it_cost > 0  # the sweep does cost something


class TestThresholdPolicy:
    def test_quiet_network_no_actions(self, tiny_env, tiny_tables):
        policy = ThresholdPolicy(tiny_tables)
        policy.reset(tiny_env)
        actions = policy.act(_obs(t=1))
        # fresh beliefs are all-clean; nothing crosses any threshold
        assert all(
            a.atype in (_T.RESET_PLC, _T.REPLACE_PLC) for a in actions
        ) and not actions

    def test_repairs_plcs(self, tiny_env, tiny_tables):
        policy = ThresholdPolicy(tiny_tables)
        policy.reset(tiny_env)
        actions = policy.act(_obs(t=1, destroyed=[0]))
        assert any(a.atype is _T.REPLACE_PLC and a.target == 0
                   for a in actions)

    def test_threshold_ordering_enforced(self, tiny_tables):
        with pytest.raises(ValueError):
            ThresholdPolicy(tiny_tables, investigate_threshold=0.8,
                            mitigate_threshold=0.5)
        with pytest.raises(ValueError):
            ThresholdPolicy(tiny_tables, investigate_threshold=-0.1)

    def test_max_actions_caps_output(self, tiny_env, tiny_tables):
        policy = ThresholdPolicy(tiny_tables, investigate_threshold=0.0,
                                 max_actions=1)
        policy.reset(tiny_env)
        # threshold 0 makes every node a candidate (p > 0 after update)
        actions = policy.act(_obs(t=1, disrupted=[0], destroyed=[1]))
        assert len(actions) <= 1

    def test_lower_threshold_spends_more(self, tiny_env, tiny_tables):
        """The cost-vs-coverage knob: a paranoid threshold must cost at
        least as much IT disruption as a lax one on the same episodes."""
        paranoid = ThresholdPolicy(tiny_tables, investigate_threshold=0.01,
                                   mitigate_threshold=0.05)
        lax = ThresholdPolicy(tiny_tables, investigate_threshold=0.45,
                              mitigate_threshold=0.9)
        cost_paranoid = run_episode(tiny_env, paranoid, seed=4,
                                    max_steps=120).avg_it_cost
        cost_lax = run_episode(tiny_env, lax, seed=4,
                               max_steps=120).avg_it_cost
        assert cost_paranoid >= cost_lax

    def test_full_episode_runs(self, tiny_env, tiny_tables):
        metrics = run_episode(tiny_env, ThresholdPolicy(tiny_tables),
                              seed=0, max_steps=100)
        assert np.isfinite(metrics.discounted_return)


class TestTopologySampler:
    def test_samples_within_bounds(self):
        from repro.net.generator import TopologySampler

        sampler = TopologySampler()
        rng = np.random.default_rng(0)
        for _ in range(30):
            topo = sampler.sample(rng)
            assert 3 <= topo.l2_workstations <= 40
            assert 1 <= topo.l1_hmis <= 8
            assert 4 <= topo.plcs <= 80
            assert "opc" in topo.l2_servers

    def test_sampled_topologies_build(self):
        from repro.net.generator import TopologySampler
        from repro.net.topology import build_topology

        sampler = TopologySampler(max_workstations=8, max_plcs=10)
        rng = np.random.default_rng(1)
        for _ in range(5):
            topology = build_topology(sampler.sample(rng))
            assert topology.n_nodes > 0

    def test_rejects_bad_bounds(self):
        from repro.net.generator import TopologySampler

        with pytest.raises(ValueError):
            TopologySampler(min_workstations=10, max_workstations=5)
        with pytest.raises(ValueError):
            TopologySampler(min_plcs=0)

    def test_sample_configs_clamps_attacker(self):
        from repro.net.generator import TopologySampler, sample_configs

        base = tiny_network()
        configs = sample_configs(
            10, base, TopologySampler(max_workstations=5, max_plcs=6),
            seed=3,
        )
        assert len(configs) == 10
        for config in configs:
            assert config.apt.plc_threshold_destroy <= config.topology.plcs
            assert config.apt.hmi_threshold <= config.topology.l1_hmis

    def test_sample_configs_deterministic(self):
        from repro.net.generator import sample_configs

        base = tiny_network()
        assert sample_configs(4, base, seed=9) == sample_configs(4, base,
                                                                 seed=9)

    def test_sampled_config_episodes_run(self):
        from repro.net.generator import TopologySampler, sample_configs
        from repro.defenders import PlaybookPolicy

        base = tiny_network(tmax=30)
        configs = sample_configs(
            2, base, TopologySampler(max_workstations=6, max_plcs=8), seed=5
        )
        for config in configs:
            env = repro.make_env(config, seed=0)
            metrics = run_episode(env, PlaybookPolicy(), seed=0, max_steps=30)
            assert np.isfinite(metrics.discounted_return)


class TestGuardedPolicy:
    def test_name_reflects_inner(self):
        from repro.defenders import GuardedPolicy, NoopPolicy

        assert GuardedPolicy(NoopPolicy()).name == "guarded-noop"

    def test_repairs_plcs_even_when_inner_is_idle(self, tiny_env):
        from repro.defenders import GuardedPolicy, NoopPolicy

        policy = GuardedPolicy(NoopPolicy())
        policy.reset(tiny_env)
        actions = policy.act(_obs(t=1, disrupted=[0], destroyed=[1]))
        assert DefenderActionType.RESET_PLC in {a.atype for a in actions}
        assert DefenderActionType.REPLACE_PLC in {a.atype for a in actions}

    def test_inner_actions_pass_through(self, tiny_env):
        from repro.defenders import GuardedPolicy, ScheduledSweepPolicy

        policy = GuardedPolicy(ScheduledSweepPolicy(period=10, batch=2))
        policy.reset(tiny_env)
        actions = policy.act(_obs(t=10))
        assert sum(a.atype is DefenderActionType.SIMPLE_SCAN
                   for a in actions) == 2

    def test_duplicate_repairs_deduplicated(self, tiny_env):
        from repro.defenders import GuardedPolicy, ScheduledSweepPolicy

        # the sweep also repairs PLCs; the guard must not double-launch
        policy = GuardedPolicy(ScheduledSweepPolicy(period=10))
        policy.reset(tiny_env)
        actions = policy.act(_obs(t=3, destroyed=[2]))
        replacements = [a for a in actions
                        if a.atype is DefenderActionType.REPLACE_PLC]
        assert len(replacements) == 1

    def test_busy_plcs_skipped(self, tiny_env):
        from repro.defenders import GuardedPolicy, NoopPolicy

        policy = GuardedPolicy(NoopPolicy())
        policy.reset(tiny_env)
        obs = _obs(t=1, destroyed=[0])
        obs.plc_busy[0] = True
        assert policy.act(obs) == []

    def test_guarded_acso_full_episode(self, tiny_env, tiny_tables):
        import numpy as np

        from repro.defenders import GuardedPolicy
        from repro.defenders.acso import ACSOPolicy
        from repro.eval import run_episode
        from repro.rl import AttentionQNetwork, QNetConfig

        inner = ACSOPolicy(
            AttentionQNetwork(
                QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                           head_hidden=16),
                seed=0,
            ),
            tiny_tables,
        )
        metrics = run_episode(tiny_env, GuardedPolicy(inner), seed=0,
                              max_steps=40)
        assert np.isfinite(metrics.discounted_return)
