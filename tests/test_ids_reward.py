"""Tests for the IDS alert model and the reward module."""

import numpy as np
import pytest

from repro.config import IDSConfig, RewardConfig, tiny_network
from repro.net import Condition, build_topology
from repro.net.topology import L1_OPS
from repro.sim.apt_actions import APTActionRequest, APTActionType
from repro.sim.ids import IDSModule
from repro.sim.observations import AlertSource
from repro.sim.reward import RewardModule
from repro.sim.state import NetworkState

_A = APTActionType


@pytest.fixture()
def topo():
    return build_topology(tiny_network().topology)


@pytest.fixture()
def state(topo):
    return NetworkState(topo)


def _ids(topo, seed=0, **kw):
    return IDSModule(IDSConfig(**kw), topo, np.random.default_rng(seed))


def _compromise(state, node, *extra):
    state.set_condition(node, Condition.SCANNED)
    state.set_condition(node, Condition.COMPROMISED)
    for cond in extra:
        state.set_condition(node, cond)


class TestActionAlerts:
    def test_zero_rate_never_alerts(self, topo, state):
        ids = _ids(topo)
        req = APTActionRequest(_A.ANALYZE_HISTORIAN, 0, target_node=0)
        assert all(
            ids.action_alert(req, state, t) is None for t in range(200)
        )

    def test_guaranteed_alert(self, topo, state):
        ids = _ids(topo)
        req = APTActionRequest(_A.DESTROY_PLC, 0, target_plc=0)  # rate 1.0
        alert = ids.action_alert(req, state, 5)
        assert alert is not None
        assert alert.severity == 3
        assert alert.source is AlertSource.APT_ACTION

    def test_cross_level_message_alerts_more(self, topo, state):
        """Commands from L2 to L1 PLCs traverse the firewall (x20)."""
        n_trials = 4000
        hits_local, hits_cross = 0, 0
        hmi = next(n.node_id for n in topo.nodes if n.level == 1)
        l2 = next(n.node_id for n in topo.nodes if n.level == 2)
        for seed in range(n_trials):
            ids = _ids(topo, seed=seed)
            local = APTActionRequest(_A.DISCOVER_PLC, hmi, target_vlan=L1_OPS)
            cross = APTActionRequest(_A.DISCOVER_PLC, l2, target_vlan=L1_OPS)
            hits_local += ids.action_alert(local, state, 0) is not None
            hits_cross += ids.action_alert(cross, state, 0) is not None
        assert hits_local / n_trials == pytest.approx(0.03, abs=0.01)
        assert hits_cross / n_trials == pytest.approx(
            min(1.0, 0.03 * 20), abs=0.03
        )

    def test_message_alert_attributed_to_target(self, topo, state):
        ids = _ids(topo)
        req = APTActionRequest(_A.COMPROMISE, 0, target_node=2)
        for t in range(500):
            alert = ids.action_alert(req, state, t)
            if alert is not None:
                assert alert.node_id == 2
                return
        pytest.fail("expected at least one alert in 500 draws")


class TestPassiveAlerts:
    def test_none_when_clean(self, topo, state):
        ids = _ids(topo)
        assert ids.passive_alerts(state, 0, 0.5) == []

    def test_rate_on_compromised(self, topo, state):
        _compromise(state, 0)
        hits = 0
        ids = _ids(topo)
        for t in range(3000):
            hits += len(ids.passive_alerts(state, t, 0.5))
        assert hits / 3000 == pytest.approx(0.1, abs=0.02)

    def test_cleanup_reduces_rate(self, topo, state):
        _compromise(state, 0, Condition.ADMIN, Condition.CLEANED)
        ids = _ids(topo)
        hits = sum(len(ids.passive_alerts(state, t, 0.9)) for t in range(3000))
        assert hits / 3000 == pytest.approx(0.01, abs=0.01)

    def test_severity_reflects_depth(self, topo, state):
        _compromise(state, 0)
        _compromise(state, 1, Condition.ADMIN)
        ids = _ids(topo)
        severities = {0: set(), 1: set()}
        for t in range(2000):
            for alert in ids.passive_alerts(state, t, 0.0):
                severities[alert.node_id].add(alert.severity)
        assert severities[0] == {1}
        assert severities[1] == {2}


class TestFalseAlerts:
    def test_rates_per_level_and_severity(self, topo):
        ids = _ids(topo)
        counts = np.zeros(4)
        n = 20000
        for t in range(n):
            for alert in ids.false_alerts(t):
                assert alert.source is AlertSource.FALSE
                counts[alert.severity] += 1
        # two levels, so expected rate is 2x the per-level rate
        assert counts[1] / n == pytest.approx(2 * 5e-2, rel=0.15)
        assert counts[2] / n == pytest.approx(2 * 5e-3, rel=0.4)
        assert counts[3] / n > 0


class TestRewardModule:
    def test_nominal_step(self):
        module = RewardModule(RewardConfig())
        r = module.compute(0, 0, 0.0, 1, 5000)
        assert r.total == pytest.approx(1.0 + 0.1 * 1.0)

    def test_plc_penalties(self):
        module = RewardModule(RewardConfig())
        r = module.compute(2, 3, 0.0, 1, 5000)
        assert r.r_plc == pytest.approx(1 - 0.05 * 2 - 0.1 * 3)

    def test_it_cost_penalty(self):
        module = RewardModule(RewardConfig())
        r = module.compute(0, 0, 0.25, 1, 5000)
        assert r.r_it == pytest.approx(0.75)
        assert r.total == pytest.approx(1.0 + 0.1 * 0.75)

    def test_terminal_bonus_only_at_tmax(self):
        module = RewardModule(RewardConfig())
        assert module.compute(0, 0, 0, 4999, 5000).r_term == 0.0
        assert module.compute(0, 0, 0, 5000, 5000).r_term == pytest.approx(2000.0)

    def test_max_step_reward(self):
        assert RewardModule(RewardConfig()).max_step_reward == pytest.approx(1.1)
