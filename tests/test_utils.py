"""Tests for repro.utils: seeded RNG and statistics helpers."""

import math

import numpy as np
import pytest

from repro.utils import RngFactory, ensure_rng
from repro.utils.stats import (
    RunningStat,
    discounted_return,
    kl_divergence,
    mean_stderr,
)


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(42).child("ids").random(5)
        b = RngFactory(42).child("ids").random(5)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        factory = RngFactory(42)
        a = factory.child("ids").random(5)
        b = factory.child("apt").random(5)
        assert not np.allclose(a, b)

    def test_child_order_does_not_matter(self):
        f1 = RngFactory(7)
        _ = f1.child("first").random()
        stream_a = f1.child("target").random(3)
        f2 = RngFactory(7)
        stream_b = f2.child("target").random(3)
        assert np.allclose(stream_a, stream_b)

    def test_different_seeds_differ(self):
        a = RngFactory(1).child("x").random(5)
        b = RngFactory(2).child("x").random(5)
        assert not np.allclose(a, b)

    def test_none_seed_is_random(self):
        a = RngFactory(None).child("x").random(3)
        b = RngFactory(None).child("x").random(3)
        assert not np.allclose(a, b)


class TestEnsureRng:
    def test_passthrough(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng

    def test_from_seed(self):
        assert np.allclose(ensure_rng(5).random(3), ensure_rng(5).random(3))


class TestDiscountedReturn:
    def test_undiscounted(self):
        assert discounted_return([1, 1, 1], 1.0) == 3

    def test_geometric(self):
        assert math.isclose(discounted_return([1, 1, 1], 0.5), 1 + 0.5 + 0.25)

    def test_empty(self):
        assert discounted_return([], 0.9) == 0.0

    def test_single(self):
        assert discounted_return([4.2], 0.1) == 4.2

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        rewards = rng.normal(size=50)
        gamma = 0.97
        expected = float(np.sum(rewards * gamma ** np.arange(50)))
        assert math.isclose(discounted_return(rewards, gamma), expected)


class TestMeanStderr:
    def test_empty(self):
        assert mean_stderr([]) == (0.0, 0.0)

    def test_single(self):
        assert mean_stderr([3.0]) == (3.0, 0.0)

    def test_known_values(self):
        mean, err = mean_stderr([1.0, 2.0, 3.0])
        assert math.isclose(mean, 2.0)
        assert math.isclose(err, 1.0 / math.sqrt(3))


class TestKlDivergence:
    def test_zero_for_identical(self):
        assert kl_divergence([0.3, 0.7], [0.3, 0.7]) == pytest.approx(0.0, abs=1e-9)

    def test_positive(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_asymmetric(self):
        p, q = [0.9, 0.1], [0.4, 0.6]
        assert kl_divergence(p, q) != pytest.approx(kl_divergence(q, p))

    def test_handles_zeros(self):
        assert np.isfinite(kl_divergence([1.0, 0.0], [0.5, 0.5]))


class TestRunningStat:
    def test_mean_and_std(self):
        stat = RunningStat()
        values = [1.0, 2.0, 3.0, 4.0]
        for v in values:
            stat.push(v)
        assert stat.count == 4
        assert stat.mean == pytest.approx(np.mean(values))
        assert stat.std == pytest.approx(np.std(values, ddof=1))

    def test_single_value_has_zero_variance(self):
        stat = RunningStat()
        stat.push(5.0)
        assert stat.variance == 0.0
