"""Tests for Q-networks, features, shaping, and schedules."""

import numpy as np
import pytest

import repro
from repro.config import paper_network, small_network, tiny_network
from repro.net import build_topology
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    ConvQNetwork,
    PotentialShaper,
    QNetConfig,
    RawHistoryEncoder,
    ExponentialDecay,
    LinearSchedule,
    stack_features,
)
from repro.rl.features import GLOBAL_FEATURE_DIM, NODE_FEATURE_DIM, PLC_FEATURE_DIM
from repro.rl.qnetwork import ConvNetConfig
from repro.sim.orchestrator import enumerate_actions


@pytest.fixture()
def tiny_topo():
    return build_topology(tiny_network().topology)


class TestFeaturizer:
    def test_feature_shapes(self, tiny_topo, tiny_tables):
        env = repro.make_env(tiny_network(tmax=30), seed=0)
        feat = ACSOFeaturizer(env.topology, tiny_tables)
        obs = env.reset(seed=0)
        fs = feat.update(obs)
        assert fs.node.shape == (env.topology.n_nodes, NODE_FEATURE_DIM)
        assert fs.plc.shape == (env.topology.n_plcs, PLC_FEATURE_DIM)
        assert fs.glob.shape == (GLOBAL_FEATURE_DIM,)

    def test_stack_features(self, tiny_tables):
        env = repro.make_env(tiny_network(tmax=30), seed=0)
        feat = ACSOFeaturizer(env.topology, tiny_tables)
        obs = env.reset(seed=0)
        fs = feat.update(obs)
        node, plc, glob = stack_features([fs, fs, fs])
        assert node.shape[0] == 3 and plc.shape[0] == 3 and glob.shape == (3, 3)

    def test_raw_history_encoder(self, tiny_topo):
        env = repro.make_env(tiny_network(tmax=30), seed=0)
        enc = RawHistoryEncoder(env.topology, window=16)
        obs = env.reset(seed=0)
        hist = enc.update(obs)
        assert hist.shape == (enc.step_dim, 16)
        obs2, *_ = env.step(None)
        hist2 = enc.update(obs2)
        # history slides: previous newest column moved left by one
        assert np.allclose(hist[:, -1], hist2[:, -2])


class TestAttentionQNetwork:
    def test_requires_binding(self):
        qnet = AttentionQNetwork(QNetConfig(), seed=0)
        with pytest.raises(RuntimeError):
            qnet.forward(np.zeros((1, 2, NODE_FEATURE_DIM)),
                         np.zeros((1, 1, PLC_FEATURE_DIM)),
                         np.zeros((1, GLOBAL_FEATURE_DIM)))

    def test_action_list_matches_orchestrator_set(self, tiny_topo):
        qnet = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(tiny_topo)
        assert set(qnet.action_list) == set(enumerate_actions(tiny_topo))
        assert qnet.n_actions == len(enumerate_actions(tiny_topo))

    def test_forward_shape_and_bounds(self, tiny_topo):
        cfg = QNetConfig(q_scale=4.0)
        qnet = AttentionQNetwork(cfg, seed=0).bind_topology(tiny_topo)
        node = np.random.default_rng(0).normal(
            size=(5, tiny_topo.n_nodes, NODE_FEATURE_DIM))
        plc = np.zeros((5, tiny_topo.n_plcs, PLC_FEATURE_DIM))
        glob = np.zeros((5, GLOBAL_FEATURE_DIM))
        q = qnet.forward(node, plc, glob)
        assert q.shape == (5, qnet.n_actions)
        assert (np.abs(q.data) <= cfg.q_scale).all()

    def test_parameter_count_independent_of_network_size(self):
        """The paper's core scaling claim (Section 4.4)."""
        small = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(
            build_topology(small_network().topology))
        big = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(
            build_topology(paper_network().topology))
        assert small.n_parameters() == big.n_parameters()
        assert big.n_actions > small.n_actions

    def test_same_weights_rebindable_across_topologies(self, tiny_tables):
        qnet = AttentionQNetwork(QNetConfig(), seed=0)
        for cfg in (tiny_network(), small_network()):
            topo = build_topology(cfg.topology)
            qnet.bind_topology(topo)
            node = np.zeros((1, topo.n_nodes, NODE_FEATURE_DIM))
            plc = np.zeros((1, topo.n_plcs, PLC_FEATURE_DIM))
            glob = np.zeros((1, GLOBAL_FEATURE_DIM))
            assert qnet.forward(node, plc, glob).shape == (1, qnet.n_actions)

    def test_q_values_single(self, tiny_topo, tiny_tables):
        env = repro.make_env(tiny_network(tmax=20), seed=0)
        qnet = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(env.topology)
        feat = ACSOFeaturizer(env.topology, tiny_tables)
        q = qnet.q_values(feat.update(env.reset(seed=0)))
        assert q.shape == (qnet.n_actions,)

    def test_paper_config_larger(self):
        assert QNetConfig.paper().encoder_layers == 4
        small = AttentionQNetwork(QNetConfig(), seed=0)
        paper = AttentionQNetwork(QNetConfig.paper(), seed=0)
        assert paper.n_parameters() > small.n_parameters()


class TestConvQNetwork:
    def test_forward_shape(self):
        net = ConvQNetwork(step_dim=30, n_actions=49,
                           config=ConvNetConfig(window=64), seed=0)
        out = net.forward(np.zeros((2, 30, 64)))
        assert out.shape == (2, 49)

    def test_parameters_grow_with_action_space(self):
        small = ConvQNetwork(step_dim=30, n_actions=49, seed=0)
        big = ConvQNetwork(step_dim=30, n_actions=329, seed=0)
        assert big.n_parameters() > small.n_parameters()

    def test_window_too_small(self):
        with pytest.raises(ValueError):
            ConvQNetwork(step_dim=4, n_actions=3,
                         config=ConvNetConfig(window=4, channels=(8, 8, 8)))


class TestShaping:
    def test_securing_nodes_is_rewarded(self):
        shaper = PotentialShaper(gamma=0.99, a_weight=1.0, b_weight=2.0)
        phi_bad = shaper.potential(3, 1)  # -(3 + 2)
        phi_good = shaper.potential(1, 0)
        assert shaper.shape(phi_bad, phi_good) > 0
        assert shaper.shape(phi_good, phi_bad) < 0

    def test_telescoping_sum_is_policy_invariant(self):
        """Sum of discounted shaping terms collapses to -Phi(s0): the
        potential-based guarantee of Ng et al. (paper's non-bias claim)."""
        gamma = 0.9
        shaper = PotentialShaper(gamma)
        rng = np.random.default_rng(0)
        counts = [(int(rng.integers(5)), int(rng.integers(3))) for _ in range(20)]
        phis = [shaper.potential(w, s) for w, s in counts]
        shaped = 0.0
        for t in range(len(phis) - 1):
            done = t == len(phis) - 2
            shaped += gamma ** t * shaper.shape(phis[t], phis[t + 1], done=done)
        assert shaped == pytest.approx(-phis[0])

    def test_potential_from_info(self):
        shaper = PotentialShaper(0.99, 1.0, 2.0)
        info = {"n_ws_compromised": 2, "n_srv_compromised": 1}
        assert shaper.potential_from_info(info) == -(2 + 2)


class TestSchedules:
    def test_exponential_decay(self):
        eps = ExponentialDecay(1.0, 0.05, 0.999)
        assert eps(0) == 1.0
        assert eps(1) == pytest.approx(0.999)
        assert eps(100000) == 0.05

    def test_linear_schedule(self):
        beta = LinearSchedule(0.4, 1.0, 100)
        assert beta(0) == pytest.approx(0.4)
        assert beta(50) == pytest.approx(0.7)
        assert beta(100) == 1.0
        assert beta(500) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(decay=0.0)
        with pytest.raises(ValueError):
            LinearSchedule(0, 1, 0)
