"""Verbatim checks of the paper's published parameters (experiment E8).

These tests pin the reproduction to the paper's Tables 3, 4, and 5,
the reward function of Section 4.1, and the action-space size implied
by Table 7 (329 outputs on the evaluation network).
"""

import pytest

from repro.config import RewardConfig, paper_network
from repro.net import build_topology
from repro.sim.apt_actions import APT_ACTION_SPECS, APTActionType
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderActionType,
    enumerate_actions,
)
from repro.sim.reward import RewardModule

_A = APTActionType
_D = DefenderActionType


class TestTable3Investigations:
    """Detect probability / duration / cost (paper Table 3)."""

    @pytest.mark.parametrize(
        "atype, detect, duration, cost",
        [
            (_D.SIMPLE_SCAN, 0.03, 2, 0.01),
            (_D.ADVANCED_SCAN, 0.05, 8, 0.03),
            (_D.HUMAN_ANALYSIS, 0.5, 8, 0.05),
        ],
    )
    def test_values(self, atype, detect, duration, cost):
        spec = DEFENDER_ACTION_SPECS[atype]
        assert spec.detect_prob == detect
        assert spec.duration == duration
        assert spec.cost_host == cost
        assert spec.is_investigation

    def test_cleaned_halves_detection_at_nominal_effectiveness(self):
        # Table 3 lists "0.03/0.01"-style pairs; at the nominal cleanup
        # effectiveness of 0.5, cleaned detection = half the base rate.
        assert 0.03 * (1 - 0.5) == pytest.approx(0.015)


class TestTable4Mitigations:
    @pytest.mark.parametrize(
        "atype, cost_host, cost_server",
        [
            (_D.REBOOT, 0.01, 0.03),
            (_D.RESET_PASSWORD, 0.03, 0.05),
            (_D.REIMAGE, 0.05, 0.1),
        ],
    )
    def test_node_mitigation_costs(self, atype, cost_host, cost_server):
        spec = DEFENDER_ACTION_SPECS[atype]
        assert spec.cost_host == cost_host
        assert spec.cost_server == cost_server

    def test_plc_action_costs(self):
        assert DEFENDER_ACTION_SPECS[_D.RESET_PLC].cost_host == 0.02
        assert DEFENDER_ACTION_SPECS[_D.REPLACE_PLC].cost_host == 0.04

    def test_countermeasures(self):
        from repro.net.nodes import Condition

        assert DEFENDER_ACTION_SPECS[_D.REBOOT].countermeasure is Condition.REBOOT_PERSIST
        assert DEFENDER_ACTION_SPECS[_D.RESET_PASSWORD].countermeasure is Condition.CRED_PERSIST
        assert DEFENDER_ACTION_SPECS[_D.REIMAGE].countermeasure is None


class TestTable5APTActions:
    @pytest.mark.parametrize(
        "atype, success, n, p, rate",
        [
            (_A.SCAN_VLAN, 1.0, 60, 0.9, 0.01),
            (_A.COMPROMISE, 0.9, 60, 0.8, 0.05),
            (_A.REBOOT_PERSIST, 1.0, 4, 0.9, 0.05),
            (_A.ESCALATE, 1.0, 22, 0.9, 0.05),
            (_A.CRED_PERSIST, 1.0, 4, 0.9, 0.05),
            (_A.CLEANUP, 1.0, 4, 0.9, 0.05),
            (_A.DISCOVER_VLAN, 1.0, 60, 0.9, 0.05),
            (_A.DISCOVER_SERVER, 1.0, 60, 0.9, 0.01),
            (_A.ANALYZE_HISTORIAN, 1.0, 600, 0.9, 0.0),
            (_A.DISCOVER_PLC, 1.0, 24, 0.875, 0.03),
            (_A.FLASH_FIRMWARE, 1.0, 1, 1.0, 0.5),
            (_A.DISRUPT_PLC, 1.0, 8, 0.9, 0.9),
            (_A.DESTROY_PLC, 1.0, 1, 1.0, 1.0),
        ],
    )
    def test_values(self, atype, success, n, p, rate):
        spec = APT_ACTION_SPECS[atype]
        assert spec.success_prob == success
        assert spec.time_n == n
        assert spec.time_p == p
        assert spec.alert_rate == rate

    def test_message_actions(self):
        message = {
            _A.SCAN_VLAN, _A.COMPROMISE, _A.DISCOVER_VLAN, _A.DISCOVER_SERVER,
            _A.DISCOVER_PLC, _A.FLASH_FIRMWARE, _A.DISRUPT_PLC, _A.DESTROY_PLC,
        }
        for atype, spec in APT_ACTION_SPECS.items():
            assert spec.is_message == (atype in message)


class TestRewardSection41:
    def test_reward_weights(self):
        cfg = RewardConfig()
        assert cfg.lambda_it == 0.1
        assert cfg.disrupted_penalty == 0.05
        assert cfg.destroyed_penalty == 0.1
        assert cfg.gamma == 0.9995

    def test_max_return_is_about_2200(self):
        """Section 4.1: 'the maximum discounted return ... is 2200'."""
        cfg = RewardConfig()
        module = RewardModule(cfg)
        tmax = 5000
        total = 0.0
        for t in range(1, tmax + 1):
            r = module.compute(0, 0, 0.0, t, tmax).total
            total += cfg.gamma ** (t - 1) * r
        assert total == pytest.approx(2200, rel=0.01)


class TestActionSpaceSize:
    def test_329_actions_on_paper_network(self):
        """Matches the 329-unit output layer of the baseline net (Table 7)."""
        topo = build_topology(paper_network().topology)
        assert len(enumerate_actions(topo)) == 329
