"""Tests for the scripted attacker and trace analysis metrics."""

import numpy as np
import pytest

import repro
from repro.attacker.scripted import (
    ScriptedAttacker,
    ScriptedStep,
    beachhead_rush,
)
from repro.config import tiny_network
from repro.defenders import NoopPolicy, PlaybookPolicy
from repro.eval.analysis import (
    action_counts,
    dwell_time,
    mean_time_to_repair,
    phase_breakdown,
    time_to_first_response,
)
from repro.sim.apt_actions import APTActionRequest, APTActionType
from repro.sim.trace import EpisodeTrace, TraceStep, record_episode

_A = APTActionType


def _scripted_env(script, seed=0, tmax=80):
    return repro.make_env(tiny_network(tmax=tmax), seed=seed,
                          attacker=ScriptedAttacker(script))


def _beachhead_of(env) -> int:
    from repro.net.nodes import Condition

    return int(np.flatnonzero(
        env.sim.state.conditions[:, Condition.COMPROMISED]
    )[0])


class TestScriptedAttacker:
    def test_script_fires_in_order(self):
        env = _scripted_env([])
        env.reset(seed=0)
        beachhead = _beachhead_of(env)
        script = beachhead_rush(beachhead, target_plcs=[0, 1], start=1,
                                spacing=4)
        env = _scripted_env(script, seed=0)
        env.reset(seed=0)
        attacker = env.sim.attacker
        assert attacker.remaining == len(script)
        for _ in range(60):
            _, _, done, info = env.step([])
            if done:
                break
        assert attacker.remaining == 0
        assert attacker.phase_name == "script-done"

    def test_disruption_actually_lands(self):
        env = _scripted_env([])
        env.reset(seed=0)
        beachhead = _beachhead_of(env)
        env = _scripted_env(
            beachhead_rush(beachhead, target_plcs=[0], start=1, spacing=3),
            seed=0, tmax=60,
        )
        env.reset(seed=0)
        offline = []
        for _ in range(60):
            _, _, done, info = env.step([])
            offline.append(info["n_plcs_offline"])
            if done:
                break
        assert max(offline) >= 1  # the scripted disruption succeeded

    def test_empty_script_attacker_is_inert(self):
        env = _scripted_env([], tmax=30)
        env.reset(seed=0)
        for _ in range(30):
            _, _, done, info = env.step([])
            if done:
                break
        assert info["n_plcs_offline"] == 0
        assert info["n_compromised"] == 1  # only the beachhead

    def test_labor_budget_respected(self):
        # ten same-hour requests with labor_rate 2: at most 2 launch/hour
        requests = [
            ScriptedStep(1, APTActionRequest(_A.SCAN_VLAN, 0,
                                             target_vlan=f"v{i}"))
            for i in range(10)
        ]
        env = _scripted_env(requests, tmax=30)
        env.reset(seed=0)
        env.step([])
        assert len(env.sim.in_flight) <= env.config.apt.labor_rate

    def test_reset_restarts_script(self):
        script = [ScriptedStep(1, APTActionRequest(_A.ESCALATE, 0,
                                                   target_node=0))]
        attacker = ScriptedAttacker(script)
        env = repro.make_env(tiny_network(tmax=20), seed=0,
                             attacker=attacker)
        env.reset(seed=0)
        # the attacker sees the clock before it advances, so an entry
        # at t=1 fires on the second step
        env.step([])
        env.step([])
        assert attacker.remaining == 0
        env.reset(seed=1)
        assert attacker.remaining == 1

    def test_script_sorted_by_time(self):
        late = ScriptedStep(9, APTActionRequest(_A.ESCALATE, 0, target_node=0))
        early = ScriptedStep(2, APTActionRequest(_A.CLEANUP, 0, target_node=0))
        attacker = ScriptedAttacker([late, early])
        assert attacker.script[0] is early


def _trace(compromised, plcs_offline=None, alerts=None, actions=None,
           phases=None):
    n = len(compromised)
    plcs_offline = plcs_offline or [0] * n
    alerts = alerts or [0] * n
    actions = actions or [()] * n
    phases = phases or ["lateral_movement_l2"] * n
    steps = [
        TraceStep(
            t=i + 1,
            actions=tuple(actions[i]),
            reward=1.0,
            it_cost=0.0,
            n_alerts=alerts[i],
            alerts_by_severity=(alerts[i], 0, 0),
            n_compromised=compromised[i],
            n_plcs_offline=plcs_offline[i],
            apt_phase=phases[i],
        )
        for i in range(n)
    ]
    return EpisodeTrace(seed=0, policy="test", steps=steps)


class TestDwellTime:
    def test_counts_and_streaks(self):
        trace = _trace([1, 1, 0, 1, 1, 1, 0, 0])
        result = dwell_time(trace)
        assert result.total_hours == 5
        assert result.longest_streak == 3
        assert result.fraction == pytest.approx(5 / 8)

    def test_never_compromised(self):
        result = dwell_time(_trace([0, 0, 0]))
        assert result.total_hours == 0
        assert result.longest_streak == 0

    def test_empty_trace(self):
        assert dwell_time(EpisodeTrace(None, "x")).fraction == 0.0


class TestTimeToFirstResponse:
    def test_basic_latency(self):
        trace = _trace([1] * 6, alerts=[0, 1, 0, 0, 0, 0],
                       actions=[(), (), (), (("reboot", 0),), (), ()])
        assert time_to_first_response(trace) == 2  # alert t=2, action t=4

    def test_proactive_defense_is_negative(self):
        trace = _trace([1] * 4, alerts=[0, 0, 1, 0],
                       actions=[(("simple_scan", 0),), (), (), ()])
        assert time_to_first_response(trace) == -2

    def test_none_when_no_action(self):
        assert time_to_first_response(_trace([1], alerts=[1])) is None


class TestMeanTimeToRepair:
    def test_intervals_averaged(self):
        trace = _trace([0] * 9, plcs_offline=[0, 1, 1, 0, 0, 1, 1, 1, 0])
        assert mean_time_to_repair(trace) == pytest.approx(2.5)  # (2+3)/2

    def test_open_interval_counts(self):
        trace = _trace([0] * 4, plcs_offline=[0, 0, 1, 1])
        assert mean_time_to_repair(trace) == pytest.approx(2.0)

    def test_none_when_never_offline(self):
        assert mean_time_to_repair(_trace([0, 0])) is None


class TestPhaseBreakdown:
    def test_hours_per_phase_in_order(self):
        trace = _trace([1] * 5, phases=["a", "a", "b", "b", "b"])
        assert phase_breakdown(trace) == {"a": 2, "b": 3}
        assert list(phase_breakdown(trace)) == ["a", "b"]

    def test_missing_phase_tagged_unknown(self):
        trace = _trace([1], phases=[None])
        assert phase_breakdown(trace) == {"unknown": 1}


class TestActionCounts:
    def test_mix_totals(self):
        trace = _trace(
            [1] * 3,
            actions=[
                (("simple_scan", 0), ("reboot", 1)),
                (("advanced_scan", 2),),
                (("reimage", 0),),
            ],
        )
        counts = action_counts(trace)
        assert counts["simple_scan"] == 1
        assert counts["reboot"] == 1
        assert counts["total_investigations"] == 2
        assert counts["total_mitigations"] == 2

    def test_real_episode_counts_match_trace(self, tiny_env):
        trace = record_episode(tiny_env, PlaybookPolicy(), seed=0,
                               max_steps=60)
        counts = action_counts(trace)
        total_typed = sum(
            v for k, v in counts.items() if not k.startswith("total_")
        )
        assert total_typed == len(trace.actions_taken())


class TestEndToEndAnalysis:
    def test_noop_vs_playbook_dwell(self):
        """The playbook must not dwell longer than no defense on the
        same seeds."""
        cfg = tiny_network(tmax=150)
        env = repro.make_env(cfg, seed=0)
        noop_dwell = dwell_time(
            record_episode(env, NoopPolicy(), seed=5)
        ).total_hours
        playbook_dwell = dwell_time(
            record_episode(env, PlaybookPolicy(), seed=5)
        ).total_hours
        assert playbook_dwell <= noop_dwell
