"""Tests for off-policy evaluation: logging, IS estimators, FQE,
doubly-robust, and confidence bounds.

Estimator math is verified on hand-built logs with known probabilities
(exact arithmetic), then integration-tested on the tiny network.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import tiny_network
from repro.rl import AttentionQNetwork, QNetConfig
from repro.validation import (
    LoggedEpisode,
    LoggedStep,
    StochasticQPolicy,
    UniformRandomPolicy,
    bootstrap_ci,
    collect_logged_episodes,
    doubly_robust,
    effective_sample_size,
    empirical_bernstein_lower_bound,
    fitted_q_evaluation,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    weighted_importance_sampling,
)
from repro.validation.ope import step_ratios

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)


class FixedPolicy:
    """Test double: a constant action distribution."""

    def __init__(self, probs):
        self.probs = np.asarray(probs, dtype=float)

    def action_probs(self, features, mask):
        return self.probs


def bandit_episode(action: int, behavior_prob: float, reward: float,
                   gamma: float = 1.0) -> LoggedEpisode:
    return LoggedEpisode(
        steps=[LoggedStep(action, behavior_prob, reward)], gamma=gamma
    )


class TestStepRatios:
    def test_ratio_values(self):
        episode = bandit_episode(action=0, behavior_prob=0.5, reward=1.0)
        target = FixedPolicy([1.0, 0.0])
        assert step_ratios(episode, target) == pytest.approx([2.0])

    def test_zero_behavior_prob_raises(self):
        episode = bandit_episode(action=0, behavior_prob=0.0, reward=1.0)
        with pytest.raises(ValueError):
            step_ratios(episode, FixedPolicy([1.0, 0.0]))

    def test_clipping(self):
        episode = bandit_episode(action=0, behavior_prob=0.01, reward=1.0)
        target = FixedPolicy([1.0, 0.0])
        assert step_ratios(episode, target, clip=5.0) == pytest.approx([5.0])


class TestOrdinaryIS:
    def test_exact_two_arm_bandit(self):
        """b uniform over 2 arms, pi always arm 0, r = 1[arm 0].
        OIS over one episode of each arm: (2*1 + 0*0)/2 = 1 = V(pi)."""
        episodes = [
            bandit_episode(0, 0.5, 1.0),
            bandit_episode(1, 0.5, 0.0),
        ]
        result = ordinary_importance_sampling(episodes, FixedPolicy([1.0, 0.0]))
        assert result.estimate == pytest.approx(1.0)
        assert result.method == "OIS"

    def test_on_policy_recovers_mean_return(self):
        """pi == b makes every weight 1: the estimate is the sample mean."""
        episodes = [
            bandit_episode(0, 0.5, 2.0),
            bandit_episode(1, 0.5, 4.0),
        ]
        result = ordinary_importance_sampling(
            episodes, FixedPolicy([0.5, 0.5])
        )
        assert result.estimate == pytest.approx(3.0)
        assert result.ess == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ordinary_importance_sampling([], FixedPolicy([1.0]))


class TestWeightedIS:
    def test_self_normalization(self):
        """WIS divides by the weight sum: only arm-0 episodes count."""
        episodes = [
            bandit_episode(0, 0.5, 1.0),
            bandit_episode(1, 0.5, 0.0),
            bandit_episode(0, 0.5, 1.0),
        ]
        result = weighted_importance_sampling(episodes, FixedPolicy([1.0, 0.0]))
        assert result.estimate == pytest.approx(1.0)

    def test_all_zero_weights_gives_zero(self):
        episodes = [bandit_episode(1, 0.5, 5.0)]
        result = weighted_importance_sampling(episodes, FixedPolicy([1.0, 0.0]))
        assert result.estimate == 0.0
        assert result.ess == 0.0

    def test_bounded_by_observed_returns(self):
        """WIS is a convex combination of observed returns."""
        rng = np.random.default_rng(0)
        episodes = [
            bandit_episode(int(rng.integers(2)), 0.5, float(rng.normal()))
            for _ in range(20)
        ]
        result = weighted_importance_sampling(episodes,
                                              FixedPolicy([0.7, 0.3]))
        returns = [ep.discounted_return() for ep in episodes]
        assert min(returns) - 1e-9 <= result.estimate <= max(returns) + 1e-9


class TestPerDecisionIS:
    def test_two_step_hand_computation(self):
        """gamma=0.5, ratios (2, 0.5), rewards (1, 4):
        PDIS = 1*2*1 + 0.5*(2*0.5)*4 = 2 + 2 = 4."""
        episode = LoggedEpisode(
            steps=[
                LoggedStep(action=0, behavior_prob=0.5, reward=1.0),
                LoggedStep(action=1, behavior_prob=0.8, reward=4.0),
            ],
            gamma=0.5,
        )
        target = FixedPolicy([1.0, 0.4])
        result = per_decision_importance_sampling([episode], target)
        assert result.estimate == pytest.approx(4.0)

    def test_matches_ois_for_single_step(self):
        episodes = [bandit_episode(0, 0.25, 3.0)]
        target = FixedPolicy([0.5, 0.5])
        ois = ordinary_importance_sampling(episodes, target)
        pdis = per_decision_importance_sampling(episodes, target)
        assert pdis.estimate == pytest.approx(ois.estimate)

    def test_later_ratio_does_not_affect_early_reward(self):
        """Unlike OIS, PDIS does not punish reward at t=0 with the
        ratio at t=1."""
        def make(behavior_second):
            return LoggedEpisode(
                steps=[
                    LoggedStep(0, 0.5, reward=10.0),
                    LoggedStep(1, behavior_second, reward=0.0),
                ],
                gamma=1.0,
            )

        target = FixedPolicy([0.5, 0.5])
        a = per_decision_importance_sampling([make(0.9)], target)
        b = per_decision_importance_sampling([make(0.1)], target)
        assert a.estimate == pytest.approx(b.estimate)


class TestEffectiveSampleSize:
    def test_uniform_weights_full_ess(self):
        assert effective_sample_size(np.ones(10)) == pytest.approx(10.0)

    def test_degenerate_weights_ess_one(self):
        weights = np.zeros(10)
        weights[3] = 5.0
        assert effective_sample_size(weights) == pytest.approx(1.0)

    def test_zero_weights(self):
        assert effective_sample_size(np.zeros(4)) == 0.0

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_ess_bounded_by_n(self, weights):
        ess = effective_sample_size(np.array(weights))
        assert 1.0 - 1e-9 <= ess <= len(weights) + 1e-9


class TestConfidence:
    def test_bootstrap_brackets_the_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 2.0, size=200)
        mean, lower, upper = bootstrap_ci(values, alpha=0.05, seed=1)
        assert lower <= mean <= upper
        assert mean == pytest.approx(values.mean())

    def test_bootstrap_interval_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(size=10)
        large = np.concatenate([small] * 40)
        _, l1, u1 = bootstrap_ci(small, seed=2)
        _, l2, u2 = bootstrap_ci(large, seed=2)
        assert (u2 - l2) < (u1 - l1)

    def test_bootstrap_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bernstein_bound_below_mean(self):
        rng = np.random.default_rng(3)
        values = rng.uniform(0, 1, size=50)
        bound = empirical_bernstein_lower_bound(values, delta=0.05,
                                                value_range=1.0)
        assert bound < values.mean()

    def test_bernstein_bound_tightens_with_n(self):
        rng = np.random.default_rng(4)
        small = rng.uniform(0, 1, size=20)
        large = np.tile(small, 50)
        b_small = empirical_bernstein_lower_bound(small, value_range=1.0)
        b_large = empirical_bernstein_lower_bound(large, value_range=1.0)
        assert b_large > b_small

    def test_bernstein_needs_two_values(self):
        with pytest.raises(ValueError):
            empirical_bernstein_lower_bound([1.0])

    def test_bernstein_zero_variance_constant_values(self):
        values = np.full(100, 5.0)
        bound = empirical_bernstein_lower_bound(values, value_range=0.0)
        assert bound == pytest.approx(5.0)


@pytest.fixture()
def logged_setup(tiny_tables):
    cfg = tiny_network(tmax=30)
    env = repro.make_env(cfg, seed=0)
    qnet = AttentionQNetwork(SMALL_QNET, seed=1)
    qnet.bind_topology(env.topology)
    behavior = StochasticQPolicy(qnet, tiny_tables, temperature=1.0,
                                 epsilon=0.3, seed=5)
    episodes = collect_logged_episodes(env, behavior, episodes=3, seed=0,
                                       max_steps=30)
    return env, qnet, behavior, episodes, tiny_tables


class TestLogging:
    def test_episode_structure(self, logged_setup):
        _, _, _, episodes, _ = logged_setup
        assert len(episodes) == 3
        for episode in episodes:
            assert len(episode) == 30
            assert episode.final_features is not None
            assert (episode.behavior_probs > 0).all()
            assert (episode.behavior_probs <= 1.0 + 1e-12).all()

    def test_probs_are_normalized_distributions(self, logged_setup):
        _, _, behavior, episodes, _ = logged_setup
        step = episodes[0].steps[0]
        probs = behavior.action_probs(step.features, step.mask)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs[~step.mask] == pytest.approx(0.0, abs=1e-12))

    def test_epsilon_guarantees_support(self, logged_setup):
        _, _, behavior, episodes, _ = logged_setup
        step = episodes[0].steps[0]
        probs = behavior.action_probs(step.features, step.mask)
        n_valid = int(step.mask.sum())
        floor = behavior.epsilon / n_valid
        assert (probs[step.mask] >= floor - 1e-12).all()

    def test_greedy_policy_without_epsilon_is_degenerate(self, logged_setup):
        env, qnet, _, episodes, tables = logged_setup
        greedy = StochasticQPolicy(qnet, tables, temperature=None, epsilon=0.0)
        step = episodes[0].steps[0]
        probs = greedy.action_probs(step.features, step.mask)
        assert probs.max() == pytest.approx(1.0)
        assert (probs > 0).sum() == 1

    def test_uniform_policy_probs(self, logged_setup):
        env, qnet, _, episodes, tables = logged_setup
        uniform = UniformRandomPolicy(qnet, tables)
        step = episodes[0].steps[0]
        probs = uniform.action_probs(step.features, step.mask)
        n_valid = int(step.mask.sum())
        assert probs[step.mask] == pytest.approx(1.0 / n_valid)

    def test_rejects_bad_temperature(self, logged_setup):
        _, qnet, _, _, tables = logged_setup
        with pytest.raises(ValueError):
            StochasticQPolicy(qnet, tables, temperature=-1.0)

    def test_rejects_bad_epsilon(self, logged_setup):
        _, qnet, _, _, tables = logged_setup
        with pytest.raises(ValueError):
            StochasticQPolicy(qnet, tables, epsilon=1.5)


class TestOPEIntegration:
    def test_on_policy_is_recovers_behavior_value(self, logged_setup):
        """Evaluating the behaviour policy itself: all ratios are 1, so
        OIS equals the empirical mean return exactly."""
        _, _, behavior, episodes, _ = logged_setup
        result = ordinary_importance_sampling(episodes, behavior)
        returns = np.array([ep.discounted_return() for ep in episodes])
        assert result.estimate == pytest.approx(float(returns.mean()))
        assert result.ess == pytest.approx(len(episodes))

    def test_wis_equals_ois_on_policy(self, logged_setup):
        _, _, behavior, episodes, _ = logged_setup
        ois = ordinary_importance_sampling(episodes, behavior)
        wis = weighted_importance_sampling(episodes, behavior)
        assert wis.estimate == pytest.approx(ois.estimate)

    def test_off_policy_target_changes_weights(self, logged_setup):
        env, qnet, behavior, episodes, tables = logged_setup
        target = StochasticQPolicy(qnet, tables, temperature=0.1, epsilon=0.05)
        result = ordinary_importance_sampling(episodes, target)
        assert np.isfinite(result.estimate)
        assert result.ess < len(episodes)  # weights are no longer flat


class TestFQE:
    def test_fqe_value_finite_and_plausible(self, logged_setup):
        env, qnet, behavior, episodes, tables = logged_setup
        eval_net = AttentionQNetwork(SMALL_QNET, seed=9)
        eval_net.bind_topology(env.topology)
        result = fitted_q_evaluation(
            episodes, behavior, eval_net, iterations=2,
            epochs_per_iteration=1, batch_size=16, lr=1e-3,
        )
        assert np.isfinite(result.value)
        # one MC warm-start entry plus one per Bellman iteration
        assert len(result.losses) == 3
        # default normalization is (1 - gamma)
        assert result.reward_scale == pytest.approx(
            1.0 - episodes[0].gamma
        )
        # the tanh-bounded head caps the rescaled value envelope
        assert abs(result.value) <= (
            eval_net.config.q_scale / result.reward_scale
        )

    def test_fqe_requires_episodes(self, logged_setup):
        _, qnet, behavior, _, _ = logged_setup
        with pytest.raises(ValueError):
            fitted_q_evaluation([], behavior, qnet)

    def test_doubly_robust_runs(self, logged_setup):
        env, qnet, behavior, episodes, tables = logged_setup
        eval_net = AttentionQNetwork(SMALL_QNET, seed=9)
        eval_net.bind_topology(env.topology)
        fit = fitted_q_evaluation(episodes, behavior, eval_net, iterations=1,
                                  epochs_per_iteration=1)
        result = doubly_robust(episodes, behavior, eval_net,
                               reward_scale=fit.reward_scale)
        assert np.isfinite(result.estimate)
        assert result.method == "DR"

    def test_dr_with_perfect_q_has_zero_correction(self):
        """If Q(s,a) = r + gamma V(s') exactly on-policy, the DR
        corrections cancel and DR equals V(s_0)."""

        class PerfectQNet:
            """Two-state chain: reward 1 then terminal, gamma = 0.5."""

            def forward(self, node, plc, glob):
                from repro.nn import Tensor

                # Q(s0, a) = 1 + 0.5 * 0 = 1 for both actions; Q(s1,.) = 0
                batch = node.shape[0] if hasattr(node, "shape") else 2
                return Tensor(np.array([[1.0, 1.0], [0.0, 0.0]][:batch]))

        target = FixedPolicy([0.5, 0.5])
        episode = LoggedEpisode(
            steps=[
                LoggedStep(0, 0.5, reward=1.0,
                           features=_fake_features(0), mask=np.ones(2, bool)),
                LoggedStep(1, 0.5, reward=0.0,
                           features=_fake_features(1), mask=np.ones(2, bool)),
            ],
            gamma=0.5,
        )
        result = doubly_robust([episode], target, PerfectQNet())
        # V(s0) = 1, corrections: t=0: 1*(1 + 0.5*0 - 1) = 0;
        # t=1: 1*(0 + 0 - 0) = 0
        assert result.estimate == pytest.approx(1.0)


def _fake_features(index: int):
    """Minimal FeatureSet stand-in for the hand-built DR test."""
    from repro.rl.features import FeatureSet

    return FeatureSet(
        node=np.full((1, 1), float(index)),
        plc=np.zeros((1, 1)),
        glob=np.zeros(1),
    )
