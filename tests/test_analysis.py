"""Tests for ``repro check`` -- the AST static-analysis gates.

Each checker is exercised against a deliberately-bad fixture tree under
``tests/analysis_fixtures/`` (asserting rule ids and line numbers) and a
matching clean tree. The clean-tree test at the bottom is the tier-1
gate: the real package must stay analysis-clean.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineError,
    Policy,
    Severity,
    run_check,
)
from repro.analysis.baseline import PARKED_JUSTIFICATION
from repro.analysis.core import scan_suppressions
from repro.analysis.report import render
from repro.analysis.runner import main

FIXTURES = Path(__file__).parent / "analysis_fixtures"
PACKAGE_ROOT = Path(__file__).parent.parent / "src" / "repro"


def fixture_check(name: str):
    return run_check(root=FIXTURES / name, baseline=Baseline.empty())


def rule_lines(result) -> set[tuple[str, str, int]]:
    return {(f.rule, f.path, f.line) for f in result.findings}


# ---------------------------------------------------------------------------
# RNG discipline


class TestRngDiscipline:
    def test_bad_fixture_findings(self):
        result = fixture_check("rng_bad")
        found = rule_lines(result)
        expected = {
            ("rng-global-state", "sim/runner.py", 13),   # from-import
            ("rng-global-state", "sim/runner.py", 17),   # np.random.normal
            ("rng-global-state", "sim/runner.py", 21),   # random.random
            ("rng-wall-clock", "sim/runner.py", 25),     # time.time
            ("rng-wall-clock", "sim/runner.py", 29),     # uuid.uuid4
            ("rng-wall-clock", "sim/runner.py", 33),     # os.urandom
            ("rng-unsanctioned-factory", "sim/runner.py", 37),
            ("rng-global-state", "sim/runner.py", 41),   # imported name
        }
        assert expected <= found

    def test_severities(self):
        result = fixture_check("rng_bad")
        by_rule = {f.rule: f.severity for f in result.findings}
        assert by_rule["rng-global-state"] is Severity.ERROR
        assert by_rule["rng-wall-clock"] is Severity.ERROR
        assert by_rule["rng-unsanctioned-factory"] is Severity.WARNING

    def test_findings_carry_fix_hints(self):
        result = fixture_check("rng_bad")
        assert all(f.hint for f in result.findings)

    def test_clean_fixture(self):
        result = fixture_check("rng_clean")
        assert result.ok, [f.message for f in result.findings]

    def test_sanctioned_factory_module_exempt(self):
        # rng_clean/utils/rng.py calls default_rng and must not be
        # flagged: it IS the sanctioned factory
        result = fixture_check("rng_clean")
        assert not any(f.path == "utils/rng.py" for f in result.findings)


# ---------------------------------------------------------------------------
# Resource lifecycle


class TestResourceLifecycle:
    def test_bad_fixture_findings(self):
        result = fixture_check("lifecycle_bad")
        assert rule_lines(result) == {
            ("resource-lifecycle", "sim/vec_backends.py", 12),  # leaked local
            ("resource-lifecycle", "sim/vec_backends.py", 18),  # bare drop
            ("resource-lifecycle", "sim/vec_backends.py", 23),  # self.proc
        }

    def test_leak_messages_name_the_resource(self):
        result = fixture_check("lifecycle_bad")
        messages = " ".join(f.message for f in result.findings)
        assert "SharedMemory" in messages
        assert "Process" in messages

    def test_clean_fixture(self):
        # with-block, try/finally release, ownership transfer, finalizer
        # and class-level release must all be accepted
        result = fixture_check("lifecycle_clean")
        assert result.ok, [f.message for f in result.findings]


# ---------------------------------------------------------------------------
# Forbidden imports


class TestForbiddenImports:
    def test_bad_fixture_findings(self):
        result = fixture_check("imports_bad")
        assert rule_lines(result) == {
            ("forbidden-import", "sim/vec_transport.py", 3),  # pickle
            ("forbidden-import", "sim/vec_transport.py", 5),  # repro.serve
        }

    def test_messages_name_the_banned_module(self):
        result = fixture_check("imports_bad")
        hits = {f.message.split("'")[1] for f in result.findings}
        assert hits == {"pickle", "repro.serve"}


# ---------------------------------------------------------------------------
# Inline suppressions


class TestSuppressions:
    def test_justified_suppression_mutes_the_finding(self):
        result = fixture_check("suppressions")
        assert len(result.suppressed) == 1
        finding, why = result.suppressed[0]
        assert finding.line == 12
        assert "justified mute" in why
        assert ("rng-global-state", "sim/runner.py", 12) not in rule_lines(
            result
        )

    def test_malformed_suppression_is_its_own_error(self):
        result = fixture_check("suppressions")
        found = rule_lines(result)
        assert ("suppression-syntax", "sim/runner.py", 16) in found
        # ...and it does NOT mute the finding it sits on
        assert ("rng-global-state", "sim/runner.py", 16) in found

    def test_unguarded_finding_still_reported(self):
        assert ("rng-global-state", "sim/runner.py", 20) in rule_lines(
            fixture_check("suppressions")
        )

    def test_scan_suppressions_trailing_vs_standalone(self):
        guards, malformed = scan_suppressions(
            [
                "x = 1  # repro: allow[a-rule] -- trailing guards own line",
                "# repro: allow[b-rule] -- standalone guards next line",
                "y = 2",
                "z = 3  # repro: allow[c-rule]",
            ]
        )
        assert guards[1].covers("a-rule")
        assert guards[3].covers("b-rule")
        assert malformed == [(4, "z = 3  # repro: allow[c-rule]")]

    def test_wildcard_and_multi_rule(self):
        guards, _ = scan_suppressions(
            ["a  # repro: allow[r-one, r-two] -- both", "b  # repro: allow[*] -- all"]
        )
        assert guards[1].covers("r-one") and guards[1].covers("r-two")
        assert not guards[1].covers("r-three")
        assert guards[2].covers("anything")


# ---------------------------------------------------------------------------
# Transport schema drift (regression pin for the wire-format contract)


def _copy_transport_tree(tmp_path: Path) -> Path:
    root = tmp_path / "pkg"
    (root / "sim").mkdir(parents=True)
    for name in ("observations.py", "reward.py", "engine.py",
                 "vec_transport.py"):
        shutil.copy(PACKAGE_ROOT / "sim" / name, root / "sim" / name)
    return root


class TestTransportSchemaDrift:
    def test_unmodified_copy_is_clean(self, tmp_path):
        root = _copy_transport_tree(tmp_path)
        result = run_check(root=root, baseline=Baseline.empty())
        schema = [f for f in result.findings if f.rule == "transport-schema"]
        assert schema == []

    def test_new_observation_field_flags_encode_and_decode(self, tmp_path):
        # an Observation copy with a throwaway field must trip the
        # checker at BOTH wire-format sites -- this is the drift the
        # rule exists to catch
        root = _copy_transport_tree(tmp_path)
        obs = root / "sim" / "observations.py"
        text = obs.read_text()
        marker = "    completed_actions: "
        assert marker in text
        obs.write_text(
            text.replace(marker, "    drift_probe: int = 0\n" + marker, 1)
        )
        result = run_check(root=root, baseline=Baseline.empty())
        schema = [f for f in result.findings if f.rule == "transport-schema"]
        messages = [f.message for f in schema]
        assert len(schema) == 2, messages
        assert any("_encode_observation" in m and "drift_probe" in m
                   for m in messages)
        assert any("_decode_observation" in m and "drift_probe" in m
                   for m in messages)
        assert all(f.path == "sim/vec_transport.py" for f in schema)

    def test_new_info_key_flags_wire_format(self, tmp_path):
        root = _copy_transport_tree(tmp_path)
        engine = root / "sim" / "engine.py"
        text = engine.read_text()
        marker = '            "t": t1,'
        assert marker in text
        engine.write_text(
            text.replace(marker, '            "drift_key": 0,\n' + marker, 1)
        )
        result = run_check(root=root, baseline=Baseline.empty())
        schema = [f for f in result.findings if f.rule == "transport-schema"]
        assert any("drift_key" in f.message for f in schema), [
            f.message for f in result.findings
        ]


# ---------------------------------------------------------------------------
# Baseline


class TestBaseline:
    def _bad_root(self):
        return FIXTURES / "imports_bad"

    def test_baselined_findings_do_not_fail(self, tmp_path):
        raw = run_check(root=self._bad_root(), baseline=Baseline.empty())
        lines = {
            f: (self._bad_root() / f.path).read_text().splitlines()[f.line - 1]
            for f in raw.findings
        }
        path = tmp_path / "baseline.json"
        count = Baseline.write(
            path, raw.findings, lambda f: lines[f],
            justification="grandfathered for the test",
        )
        assert count == 2
        result = run_check(
            root=self._bad_root(), baseline=Baseline.load(path)
        )
        assert result.ok
        assert len(result.baselined) == 2

    def test_stale_entry_warns(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "forbidden-import",
                "path": "sim/vec_transport.py",
                "code": "import this_code_no_longer_exists",
                "justification": "stale on purpose",
            }],
        }))
        result = run_check(
            root=self._bad_root(), baseline=Baseline.load(path)
        )
        stale = [f for f in result.findings if f.rule == "baseline-unused"]
        assert len(stale) == 1
        assert stale[0].severity is Severity.WARNING

    def test_empty_justification_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "rule": "forbidden-import", "path": "x.py",
                "code": "import pickle", "justification": "   ",
            }],
        }))
        with pytest.raises(BaselineError, match="justification"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(BaselineError, match="version"):
            Baseline.load(path)

    @pytest.mark.parametrize("placeholder", [
        PARKED_JUSTIFICATION,
        "TODO: justify or fix, then rerun repro check",
        "  todo -- will get to it",
    ])
    def test_parked_justification_flagged(self, tmp_path, placeholder):
        raw = run_check(root=self._bad_root(), baseline=Baseline.empty())
        lines = {
            f: (self._bad_root() / f.path).read_text().splitlines()[f.line - 1]
            for f in raw.findings
        }
        path = tmp_path / "baseline.json"
        Baseline.write(path, raw.findings, lambda f: lines[f],
                       justification=placeholder)
        result = run_check(
            root=self._bad_root(), baseline=Baseline.load(path)
        )
        # the entries still park their findings (they are matched) ...
        assert len(result.baselined) == 2
        # ... but each unedited placeholder is itself a finding
        parked = [f for f in result.findings if f.rule == "baseline-parked"]
        assert len(parked) == 2
        assert all(f.severity is Severity.WARNING for f in parked)
        assert not result.ok

    def test_real_justification_not_flagged(self, tmp_path):
        raw = run_check(root=self._bad_root(), baseline=Baseline.empty())
        lines = {
            f: (self._bad_root() / f.path).read_text().splitlines()[f.line - 1]
            for f in raw.findings
        }
        path = tmp_path / "baseline.json"
        Baseline.write(path, raw.findings, lambda f: lines[f],
                       justification="legacy shim, tracked in ROADMAP")
        result = run_check(
            root=self._bad_root(), baseline=Baseline.load(path)
        )
        assert result.ok
        assert not [f for f in result.findings
                    if f.rule == "baseline-parked"]


# ---------------------------------------------------------------------------
# Report formats


class TestReportFormats:
    def _findings(self):
        return fixture_check("imports_bad").findings

    def test_json_payload(self):
        payload = json.loads(render("json", self._findings()))
        assert payload["errors"] == 2
        assert payload["warnings"] == 0
        assert {f["rule"] for f in payload["findings"]} == {
            "forbidden-import"
        }
        first = payload["findings"][0]
        assert set(first) == {
            "rule", "path", "line", "col", "severity", "message", "hint"
        }

    def test_github_annotations(self):
        out = render("github", self._findings())
        lines = out.splitlines()
        assert lines[0].startswith(
            "::error file=sim/vec_transport.py,line=3,"
        )
        assert "title=repro check [forbidden-import]" in lines[0]
        assert lines[-1].startswith("repro check: 2 error(s)")

    def test_github_escapes_newlines(self):
        from repro.analysis.core import Finding

        finding = Finding(
            rule="x", path="a.py", line=1, severity=Severity.ERROR,
            message="multi\nline 100%", hint="",
        )
        out = render("github", [finding])
        assert "multi%0Aline 100%25" in out.splitlines()[0]

    def test_text_summary_counts(self):
        out = render("text", self._findings(), suppressed=3, baselined=1)
        assert out.splitlines()[-1] == (
            "repro check: 2 error(s), 0 warning(s) "
            "(1 baselined, 3 suppressed inline)"
        )


# ---------------------------------------------------------------------------
# CLI entry points


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("rng-global-state", "transport-schema",
                     "resource-lifecycle", "forbidden-import"):
            assert rule in out

    def test_exit_one_on_findings(self, capsys):
        code = main([str(FIXTURES / "imports_bad"), "--no-baseline"])
        assert code == 1

    def test_exit_two_on_bad_root(self, capsys):
        assert main(["/nonexistent/path", "--no-baseline"]) == 2

    def test_json_format_end_to_end(self, capsys):
        main([str(FIXTURES / "imports_bad"), "--no-baseline",
              "--format=json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 2

    def test_write_baseline_then_edit_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        assert main([
            str(FIXTURES / "imports_bad"), "--write-baseline",
            "--baseline", str(baseline),
        ]) == 0
        # the machine tag parks the findings but is itself reported
        # until a human writes a real justification
        assert main([
            str(FIXTURES / "imports_bad"), "--baseline", str(baseline),
        ]) == 1
        out = capsys.readouterr().out
        assert "baseline-parked" in out
        data = json.loads(baseline.read_text())
        for entry in data["entries"]:
            assert entry["justification"] == PARKED_JUSTIFICATION
            entry["justification"] = "grandfathered for the test"
        baseline.write_text(json.dumps(data))
        assert main([
            str(FIXTURES / "imports_bad"), "--baseline", str(baseline),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 baselined" in out

    def test_repro_cli_check_subcommand(self, capsys):
        from repro.cli import main as cli_main

        code = cli_main([
            "check", str(FIXTURES / "rng_clean"), "--no-baseline",
        ])
        assert code == 0


# ---------------------------------------------------------------------------
# The tier-1 gate: the real tree is analysis-clean


class TestCleanTree:
    def test_package_passes_repro_check(self):
        result = run_check(root=PACKAGE_ROOT)
        assert result.ok, "\n" + render("text", result.findings)

    def test_the_one_sanctioned_pickle_import_is_inline_suppressed(self):
        result = run_check(root=PACKAGE_ROOT)
        suppressed = {
            (f.rule, f.path) for f, _ in result.suppressed
        }
        assert ("forbidden-import", "sim/vec_backends.py") in suppressed

    def test_policy_default_covers_all_catalog_rules(self):
        from repro.analysis.policy import RULE_CATALOG

        policy = Policy.default()
        for rule in ("rng-global-state", "rng-wall-clock",
                     "rng-unsanctioned-factory", "transport-schema",
                     "resource-lifecycle", "forbidden-imports"):
            assert policy.enabled(rule)
        assert "baseline-unused" in RULE_CATALOG
        assert "suppression-syntax" in RULE_CATALOG
