"""Tests for the columnar OPE trace store: record layout, lossless
round-trips, crash tolerance, schema guards, and lane-invariant
vectorized recording.

Round-trip and durability properties use hand-built synthetic logs
(exact field-level comparisons, no environment); the vectorized
recorder is integration-tested on the tiny network.
"""

import json

import numpy as np
import pytest

import repro
from repro.rl import AttentionQNetwork, QNetConfig
from repro.rl.features import FeatureSet
from repro.sim.vec_transport import BREAKDOWN_FIELDS, INFO_SCALAR_FIELDS
from repro.validation import (
    LoggedEpisode,
    LoggedStep,
    StochasticQPolicy,
    TraceDataset,
    TraceDims,
    TraceError,
    TraceIntegrityError,
    TraceSchemaError,
    TraceWriter,
    iter_episode_chunks,
    record_episodes_vec,
    trace_record_dtype,
    write_episodes,
)
from repro.validation.tracestore import KIND_FINAL, KIND_STEP, MANIFEST_NAME

DIMS = TraceDims(n_nodes=3, node_dim=4, n_plcs=2, plc_dim=3,
                 glob_dim=3, n_actions=5)


def make_features(rng) -> FeatureSet:
    return FeatureSet(
        node=rng.random((DIMS.n_nodes, DIMS.node_dim)),
        plc=rng.random((DIMS.n_plcs, DIMS.plc_dim)),
        glob=rng.random(DIMS.glob_dim),
    )


def make_mask(rng) -> np.ndarray:
    mask = rng.random(DIMS.n_actions) < 0.6
    if not mask.any():
        mask[0] = True
    return mask


def make_episode(rng, steps: int, seed: int, gamma: float = 0.97,
                 with_final: bool = True) -> LoggedEpisode:
    logged = [
        LoggedStep(
            action=int(rng.integers(DIMS.n_actions)),
            behavior_prob=float(rng.uniform(0.05, 1.0)),
            reward=float(rng.normal()),
            features=make_features(rng),
            mask=make_mask(rng),
        )
        for _ in range(steps)
    ]
    final = make_features(rng) if with_final else None
    return LoggedEpisode(
        steps=logged, gamma=gamma, seed=seed,
        final_features=final,
        final_mask=make_mask(rng) if with_final else None,
    )


def make_log(n_episodes: int = 4, steps: int = 10, seed: int = 0):
    rng = np.random.default_rng(seed)
    return [make_episode(rng, steps, seed=100 + i) for i in range(n_episodes)]


def assert_episodes_identical(a: LoggedEpisode, b: LoggedEpisode) -> None:
    assert len(a.steps) == len(b.steps)
    assert a.gamma == b.gamma and a.seed == b.seed
    for sa, sb in zip(a.steps, b.steps):
        assert sa.action == sb.action
        assert sa.behavior_prob == sb.behavior_prob  # f8 round-trip: exact
        assert sa.reward == sb.reward
        assert np.array_equal(sa.features.node, sb.features.node)
        assert np.array_equal(sa.features.plc, sb.features.plc)
        assert np.array_equal(sa.features.glob, sb.features.glob)
        assert np.array_equal(sa.mask, sb.mask)
    assert (a.final_features is None) == (b.final_features is None)
    if a.final_features is not None:
        assert np.array_equal(a.final_features.node, b.final_features.node)
        assert np.array_equal(a.final_mask, b.final_mask)


# ----------------------------------------------------------------------
# record layout
# ----------------------------------------------------------------------
class TestRecordDtype:
    def test_fields_cover_wire_format(self):
        dtype = trace_record_dtype(DIMS)
        names = set(dtype.names)
        assert set(INFO_SCALAR_FIELDS) <= names
        assert {f"rb_{n}" for n in BREAKDOWN_FIELDS} <= names
        assert {"episode", "lane", "kind", "done", "action",
                "behavior_prob", "reward", "node", "plc", "glob",
                "mask"} <= names

    def test_layout_is_little_endian_and_fixed_width(self):
        dtype = trace_record_dtype(DIMS)
        for name, spec in dtype.fields.items():
            kind = spec[0].base if spec[0].subdtype is None \
                else spec[0].subdtype[0]
            assert kind.str[0] in ("<", "|"), name  # LE or single-byte
        # geometry-dependent size: subarrays scale with the dims
        bigger = trace_record_dtype(DIMS._replace(n_nodes=DIMS.n_nodes + 1))
        assert bigger.itemsize == dtype.itemsize + 8 * DIMS.node_dim

    def test_dims_from_step(self):
        rng = np.random.default_rng(0)
        dims = TraceDims.from_step(make_features(rng), make_mask(rng))
        assert dims == DIMS


# ----------------------------------------------------------------------
# round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_bit_identical_round_trip(self, tmp_path):
        episodes = make_log()
        write_episodes(episodes, tmp_path / "trace", shard_rows=16)
        dataset = TraceDataset(tmp_path / "trace")
        decoded = list(dataset)
        assert len(decoded) == len(episodes)
        for original, restored in zip(episodes, decoded):
            assert_episodes_identical(original, restored)

    def test_sharding_keeps_whole_episodes(self, tmp_path):
        episodes = make_log(n_episodes=6, steps=10)
        write_episodes(episodes, tmp_path / "trace", shard_rows=16)
        dataset = TraceDataset(tmp_path / "trace")
        assert len(dataset.shards) > 1
        for shard, records in zip(dataset.shards, dataset.iter_shards()):
            rows = sum(e["steps"] + (1 if e["final"] else 0)
                       for e in shard["episodes"])
            assert rows == shard["rows"] == records.shape[0]
            # an episode never straddles shards
            boundary_kinds = records["kind"][[0, -1]]
            assert boundary_kinds[0] == KIND_STEP
            assert boundary_kinds[-1] == KIND_FINAL
        assert dataset.num_transitions == 60
        assert len(dataset) == 6

    def test_no_final_snapshot_round_trips(self, tmp_path):
        rng = np.random.default_rng(3)
        episodes = [make_episode(rng, 4, seed=1, with_final=False)]
        write_episodes(episodes, tmp_path / "trace")
        restored = list(TraceDataset(tmp_path / "trace"))[0]
        assert restored.final_features is None
        assert_episodes_identical(episodes[0], restored)

    def test_manifest_counts(self, tmp_path):
        write_episodes(make_log(3, 7), tmp_path / "trace")
        dataset = TraceDataset(tmp_path / "trace")
        assert dataset.manifest["episodes"] == 3
        assert dataset.manifest["transitions"] == 21
        assert dataset.num_rows == 3 * 8  # 7 steps + 1 final snapshot

    def test_unfeaturized_log_is_rejected(self, tmp_path):
        episode = LoggedEpisode(
            steps=[LoggedStep(action=0, behavior_prob=0.5, reward=1.0)],
            gamma=1.0,
        )
        with pytest.raises(TraceError, match="no features"):
            write_episodes([episode], tmp_path / "trace")

    def test_iter_episode_chunks_boundaries(self):
        episodes = make_log(5, 3)
        chunks = list(iter_episode_chunks(episodes, 2))
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert [id(e) for c in chunks for e in c] == [id(e) for e in episodes]
        with pytest.raises(ValueError):
            list(iter_episode_chunks(episodes, 0))


# ----------------------------------------------------------------------
# crash tolerance
# ----------------------------------------------------------------------
class TestCrashTolerance:
    def _trace(self, tmp_path, **kwargs):
        path = tmp_path / "trace"
        write_episodes(make_log(6, 10), path, shard_rows=16, **kwargs)
        return path

    def test_unlisted_partial_shard_is_ignored(self, tmp_path):
        path = self._trace(tmp_path)
        before = len(TraceDataset(path))
        # a crashed writer's un-manifested partial flush
        (path / "shard-99999.bin").write_bytes(b"\x00" * 123)
        dataset = TraceDataset(path)
        assert len(dataset) == before
        assert not dataset.dropped_truncated_final

    def test_listed_truncated_final_shard_is_dropped(self, tmp_path):
        path = self._trace(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        last = manifest["shards"][-1]["file"]
        payload = (path / last).read_bytes()
        (path / last).write_bytes(payload[:-7])
        dataset = TraceDataset(path)
        assert dataset.dropped_truncated_final
        survivors = sum(len(s["episodes"]) for s in manifest["shards"][:-1])
        assert len(dataset) == survivors
        assert len(list(dataset)) == survivors  # episodes still decode

    def test_listed_truncated_middle_shard_is_fatal(self, tmp_path):
        path = self._trace(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert len(manifest["shards"]) > 1
        first = manifest["shards"][0]["file"]
        (path / first).write_bytes((path / first).read_bytes()[:-8])
        with pytest.raises(TraceIntegrityError, match="truncated"):
            TraceDataset(path)

    def test_missing_listed_shard_is_fatal(self, tmp_path):
        path = self._trace(tmp_path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        (path / manifest["shards"][0]["file"]).unlink()
        with pytest.raises(TraceIntegrityError, match="missing"):
            TraceDataset(path)

    def test_crash_mid_recording_leaves_readable_store(self, tmp_path):
        """An unclosed writer (a SIGKILLed recorder) leaves a manifest
        covering exactly the durably flushed shards."""
        path = tmp_path / "trace"
        rng = np.random.default_rng(9)
        writer = TraceWriter(path, shard_rows=16)
        for index in range(5):
            episode = make_episode(rng, 10, seed=index)
            writer.begin_episode(index, seed=index, gamma=episode.gamma)
            for t, step in enumerate(episode.steps):
                writer.append_step(index, action=step.action,
                                   behavior_prob=step.behavior_prob,
                                   reward=step.reward,
                                   done=t == len(episode.steps) - 1,
                                   features=step.features, mask=step.mask)
            writer.finish_episode(index,
                                  final_features=episode.final_features,
                                  final_mask=episode.final_mask)
        # no close(): the process "dies" here with rows still pending
        flushed = writer.episodes_written - (
            sum(1 for _ in writer._pending_episodes))
        dataset = TraceDataset(path)
        assert len(dataset) == flushed < 5
        for episode in dataset:  # everything listed actually decodes
            assert len(episode.steps) == 10

    def test_not_a_trace_dir(self, tmp_path):
        with pytest.raises(TraceIntegrityError, match=MANIFEST_NAME):
            TraceDataset(tmp_path)


# ----------------------------------------------------------------------
# schema guards and writer misuse
# ----------------------------------------------------------------------
class TestSchemaGuards:
    def _tamper(self, path, mutate):
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        mutate(manifest)
        (path / MANIFEST_NAME).write_text(json.dumps(manifest))

    def test_foreign_format_is_rejected(self, tmp_path):
        path = tmp_path / "trace"
        write_episodes(make_log(1, 2), path)
        self._tamper(path, lambda m: m.update(format="parquet"))
        with pytest.raises(TraceSchemaError):
            TraceDataset(path)

    def test_future_version_is_rejected(self, tmp_path):
        path = tmp_path / "trace"
        write_episodes(make_log(1, 2), path)
        self._tamper(path, lambda m: m.update(version=999))
        with pytest.raises(TraceSchemaError, match="version"):
            TraceDataset(path)

    def test_geometry_drift_is_rejected(self, tmp_path):
        path = tmp_path / "trace"
        write_episodes(make_log(1, 2), path)
        self._tamper(path,
                     lambda m: m["dims"].update(n_actions=DIMS.n_actions + 1))
        with pytest.raises(TraceSchemaError, match="incompatible"):
            TraceDataset(path)

    def test_writer_refuses_nonempty_dir(self, tmp_path):
        path = tmp_path / "trace"
        write_episodes(make_log(1, 2), path)
        with pytest.raises(TraceError, match="non-empty"):
            TraceWriter(path)

    def test_shape_drift_mid_recording_is_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        writer = TraceWriter(tmp_path / "trace")
        writer.begin_episode(0)
        writer.append_step(0, action=0, behavior_prob=0.5, reward=0.0,
                           done=False, features=make_features(rng),
                           mask=make_mask(rng))
        writer.append_step(
            0, action=0, behavior_prob=0.5, reward=0.0, done=True,
            features=FeatureSet(node=np.zeros((7, 2)),
                                plc=np.zeros((1, 3)), glob=np.zeros(3)),
            mask=np.ones(4, dtype=bool))
        # steps buffer raw; the drift surfaces when the episode serializes
        with pytest.raises(TraceSchemaError, match="geometry"):
            writer.finish_episode(0)

    def test_writer_misuse(self, tmp_path):
        rng = np.random.default_rng(0)
        writer = TraceWriter(tmp_path / "trace")
        writer.begin_episode(0)
        with pytest.raises(TraceError, match="already recorded"):
            writer.begin_episode(0)
        with pytest.raises(TraceError, match="not open"):
            writer.append_step(5, action=0, behavior_prob=0.5, reward=0.0,
                               done=True, features=make_features(rng),
                               mask=make_mask(rng))
        with pytest.raises(TraceError, match="never finished"):
            writer.close()
        with pytest.raises(TraceError, match="come together"):
            writer.finish_episode(0, final_features=make_features(rng))


# ----------------------------------------------------------------------
# vectorized recording (tiny-network integration)
# ----------------------------------------------------------------------
QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                  encoder_layers=2, head_hidden=16)


class TestVecRecording:
    def _record(self, tmp_path, tiny_tables, num_envs: int, name: str):
        venv = repro.make_vec("inasim-tiny-v1", num_envs, seed=0, horizon=8)
        qnet = AttentionQNetwork(QNET, seed=1)
        qnet.bind_topology(venv.policy_env(0).topology)

        def behavior_factory(ep: int):
            return StochasticQPolicy(qnet, tiny_tables, temperature=1.0,
                                     epsilon=0.3, seed=50 + ep)

        path = tmp_path / name
        with TraceWriter(path, shard_rows=32) as writer:
            transitions = record_episodes_vec(venv, behavior_factory, 4,
                                              writer, seed=11, max_steps=8)
        venv.close()
        return path, transitions

    def test_lane_count_invariance(self, tmp_path, tiny_tables):
        """The pinned property: the on-disk log is independent of how
        many lanes recorded it."""
        path1, n1 = self._record(tmp_path, tiny_tables, 1, "lanes1")
        path3, n3 = self._record(tmp_path, tiny_tables, 3, "lanes3")
        assert n1 == n3 > 0
        solo = list(TraceDataset(path1))
        fleet = list(TraceDataset(path3))
        assert len(solo) == len(fleet) == 4
        for a, b in zip(solo, fleet):
            # lanes differ, so compare decoded content, not raw bytes
            assert_episodes_identical(a, b)

    def test_recorder_captures_engine_info(self, tmp_path, tiny_tables):
        path, transitions = self._record(tmp_path, tiny_tables, 2, "info")
        dataset = TraceDataset(path)
        assert dataset.num_transitions == transitions
        rows = np.concatenate(list(dataset.iter_shards()))
        steps = rows[rows["kind"] == KIND_STEP]
        # engine step counters landed in the wire-format info fields
        assert steps["t"].min() >= 1
        per_episode = steps["episode"]
        for episode in np.unique(per_episode):
            ts = steps["t"][per_episode == episode]
            assert list(ts) == list(range(1, len(ts) + 1))
