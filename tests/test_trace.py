"""Tests for episode trace recording, serialization, and replay."""

import pytest

import repro
from repro.config import tiny_network
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.sim.trace import (
    EpisodeTrace,
    record_episode,
    verify_determinism,
)


@pytest.fixture()
def trace(tiny_env):
    return record_episode(tiny_env, SemiRandomPolicy(rate=3.0, seed=0),
                          seed=3, max_steps=40)


class TestRecording:
    def test_one_step_per_hour(self, trace):
        assert len(trace) == 40
        assert [s.t for s in trace.steps] == list(range(1, 41))

    def test_metadata(self, trace):
        assert trace.seed == 3
        assert trace.policy == "semi-random"

    def test_actions_reconstruct(self, trace):
        actions = trace.actions_taken()
        assert all(hasattr(a, "atype") for a in actions)
        # the random policy at rate 3 launches actions most steps
        assert actions

    def test_alert_severity_sums_to_total(self, trace):
        for step in trace.steps:
            assert sum(step.alerts_by_severity) == step.n_alerts

    def test_totals(self, trace):
        assert trace.total_reward == pytest.approx(
            sum(s.reward for s in trace.steps)
        )
        assert trace.total_it_cost >= 0.0

    def test_noop_trace_has_no_actions(self, tiny_env):
        trace = record_episode(tiny_env, NoopPolicy(), seed=1, max_steps=20)
        assert all(not step.actions for step in trace.steps)

    def test_apt_phase_recorded(self, trace):
        phases = {s.apt_phase for s in trace.steps}
        assert phases  # FSM attacker reports its phase every step
        assert None not in phases


class TestSerialization:
    def test_jsonl_roundtrip(self, trace, tmp_path):
        path = tmp_path / "episode.jsonl"
        trace.to_jsonl(path)
        loaded = EpisodeTrace.from_jsonl(path)
        assert loaded.seed == trace.seed
        assert loaded.policy == trace.policy
        assert loaded.steps == trace.steps

    def test_file_is_line_oriented_json(self, trace, tmp_path):
        import json

        path = tmp_path / "episode.jsonl"
        trace.to_jsonl(path)
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(trace) + 1  # header + steps
        for line in lines:
            json.loads(line)

    def test_truncated_file_rejected(self, trace, tmp_path):
        path = tmp_path / "episode.jsonl"
        trace.to_jsonl(path)
        lines = path.read_text().strip().split("\n")
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            EpisodeTrace.from_jsonl(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            EpisodeTrace.from_jsonl(path)


class TestDeterminism:
    def test_same_seed_identical_traces(self):
        cfg = tiny_network(tmax=60)
        assert verify_determinism(
            lambda: repro.make_env(cfg),
            lambda: PlaybookPolicy(),
            seed=5,
            max_steps=60,
        )

    def test_different_seeds_diverge(self):
        cfg = tiny_network(tmax=60)
        env = repro.make_env(cfg)
        a = record_episode(env, PlaybookPolicy(), seed=1, max_steps=60)
        b = record_episode(env, PlaybookPolicy(), seed=2, max_steps=60)
        assert a.steps != b.steps

    def test_stochastic_policy_with_fixed_seed_is_deterministic(self):
        cfg = tiny_network(tmax=40)
        assert verify_determinism(
            lambda: repro.make_env(cfg),
            lambda: SemiRandomPolicy(rate=3.0, seed=9),
            seed=2,
            max_steps=40,
        )
