"""Tests for repro.config presets and validation."""

import pytest

from repro.config import (
    APTConfig,
    RewardConfig,
    paper_network,
    small_network,
    tiny_network,
)


class TestTopologyConfig:
    def test_paper_counts(self):
        topo = paper_network().topology
        assert topo.l2_workstations == 25
        assert topo.n_servers == 3
        assert topo.l1_hmis == 5
        assert topo.plcs == 50
        assert topo.n_nodes == 33
        assert topo.n_hosts == 30

    def test_small_network_is_grid_search_config(self):
        topo = small_network().topology
        assert (topo.l2_workstations, topo.l1_hmis, topo.plcs) == (10, 3, 30)

    def test_tiny_network_small_and_fast(self):
        cfg = tiny_network()
        assert cfg.topology.n_nodes <= 8
        assert cfg.apt.time_scale > 1


class TestAPTConfig:
    def test_defaults_match_paper(self):
        apt = APTConfig()
        assert apt.lateral_threshold == 3
        assert apt.plc_threshold_destroy == 15
        assert apt.plc_threshold_disrupt == 25
        assert apt.labor_rate == 2
        assert apt.cleanup_effectiveness == 0.5

    def test_plc_threshold_follows_objective(self):
        assert APTConfig(objective="destroy").plc_threshold == 15
        assert APTConfig(objective="disrupt").plc_threshold == 25

    @pytest.mark.parametrize("bad", [{"objective": "steal"}, {"vector": "usb"},
                                     {"cleanup_effectiveness": 1.5},
                                     {"time_scale": 0.0}])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            APTConfig(**bad)


class TestRewardConfig:
    def test_terminal_reward_is_inverse_gap(self):
        cfg = RewardConfig()
        assert cfg.terminal_reward == pytest.approx(1.0 / (1.0 - cfg.gamma))

    def test_paper_gamma(self):
        assert RewardConfig().gamma == 0.9995


class TestSimConfig:
    def test_default_horizon(self):
        assert paper_network().tmax == 5000

    def test_with_apt_replaces_only_apt(self):
        cfg = paper_network()
        new_apt = APTConfig(objective="disrupt")
        cfg2 = cfg.with_apt(new_apt)
        assert cfg2.apt.objective == "disrupt"
        assert cfg2.topology is cfg.topology
        assert cfg.apt.objective == "destroy"  # original untouched

    def test_with_tmax(self):
        assert paper_network().with_tmax(10).tmax == 10

    def test_frozen(self):
        with pytest.raises(Exception):
            paper_network().tmax = 1
