"""End-to-end OPE pipeline tests: estimator equivalence over the
columnar trace store, behaviour-support diagnostics, ratio-bootstrap
confidence intervals, the checkpoint-promotion gate (store, service,
HTTP), and the ``repro ope`` CLI verbs.

The pinned property throughout: estimates computed from an on-disk
trace are **bit-identical** to the legacy in-memory path — same
floats, not approximately equal floats.
"""

import json

import numpy as np
import pytest

import repro
from repro.cli import main as cli_main
from repro.config import tiny_network
from repro.rl import AttentionQNetwork, QNetConfig
from repro.serve import (
    PromotionError,
    RunStore,
    promote_checkpoint,
)
from repro.serve.promotion import report_lower_bound
from repro.rl.features import FeatureSet
from repro.validation import (
    BehaviorSupportError,
    LoggedEpisode,
    LoggedStep,
    StochasticQPolicy,
    TraceDataset,
    bootstrap_ratio_ci,
    collect_logged_episodes,
    doubly_robust,
    effective_sample_size,
    fitted_q_evaluation,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    run_ope_suite,
    weighted_importance_sampling,
    write_episodes,
)
from repro.validation.suite import SUITE_METHODS

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)

FQE_OPTS = dict(iterations=2, epochs_per_iteration=1, batch_size=16,
                lr=3e-3, mc_epochs=2, seed=4, chunk_episodes=64)


@pytest.fixture()
def pipeline(tiny_tables, tmp_path):
    cfg = tiny_network(tmax=30)
    env = repro.make_env(cfg, seed=0)
    qnet = AttentionQNetwork(SMALL_QNET, seed=1)
    qnet.bind_topology(env.topology)
    behavior = StochasticQPolicy(qnet, tiny_tables, temperature=1.0,
                                 epsilon=0.3, seed=5)
    episodes = collect_logged_episodes(env, behavior, episodes=3, seed=0,
                                       max_steps=12)
    target = StochasticQPolicy(qnet, tiny_tables, temperature=0.25,
                               epsilon=0.1, seed=2)
    write_episodes(episodes, tmp_path / "trace", shard_rows=8)
    dataset = TraceDataset(tmp_path / "trace")

    def fresh_eval_net():
        net = AttentionQNetwork(SMALL_QNET, seed=9)
        net.bind_topology(env.topology)
        return net

    return episodes, dataset, target, fresh_eval_net


# ----------------------------------------------------------------------
# the acceptance criterion: disk == memory, bitwise
# ----------------------------------------------------------------------
class TestEstimatorEquivalence:
    def test_is_estimators_bit_identical_over_trace(self, pipeline):
        episodes, dataset, target, _ = pipeline
        for estimator in (ordinary_importance_sampling,
                          weighted_importance_sampling):
            memory = estimator(episodes, target)
            disk = estimator(dataset, target)
            assert disk.estimate == memory.estimate  # exact, not approx
            assert disk.stderr == memory.stderr
            assert disk.ess == memory.ess
        memory = per_decision_importance_sampling(episodes, target, clip=10.0)
        disk = per_decision_importance_sampling(dataset, target, clip=10.0)
        assert disk.estimate == memory.estimate

    def test_fqe_and_dr_bit_identical_over_trace(self, pipeline):
        episodes, dataset, target, fresh_eval_net = pipeline
        fit_memory = fitted_q_evaluation(episodes, target, fresh_eval_net(),
                                         **FQE_OPTS)
        fit_disk = fitted_q_evaluation(dataset, target, fresh_eval_net(),
                                       **FQE_OPTS)
        assert fit_disk.value == fit_memory.value
        assert np.array_equal(fit_disk.start_values, fit_memory.start_values)
        assert fit_disk.losses == fit_memory.losses
        dr_memory = doubly_robust(episodes, target, fit_memory.qnet,
                                  clip=10.0,
                                  reward_scale=fit_memory.reward_scale)
        dr_disk = doubly_robust(dataset, target, fit_disk.qnet, clip=10.0,
                                reward_scale=fit_disk.reward_scale)
        assert dr_disk.estimate == dr_memory.estimate

    def test_suite_over_trace_matches_standalone(self, pipeline):
        episodes, dataset, target, fresh_eval_net = pipeline
        report = run_ope_suite(dataset, target, fresh_eval_net(), clip=10.0,
                               n_boot=100, fqe_options=FQE_OPTS)
        ois = ordinary_importance_sampling(episodes, target)
        wis = weighted_importance_sampling(episodes, target)
        pdis = per_decision_importance_sampling(episodes, target, clip=10.0)
        fqe = fitted_q_evaluation(episodes, target, fresh_eval_net(),
                                  **FQE_OPTS)
        assert report["OIS"].estimate == ois.estimate
        assert report["WIS"].estimate == wis.estimate
        assert report["PDIS"].estimate == pdis.estimate
        assert report["FQE"].estimate == fqe.value
        assert report["DM"].estimate == fqe.value
        dr = doubly_robust(episodes, target, fqe.qnet, clip=10.0,
                           reward_scale=fqe.reward_scale)
        assert report["DR"].estimate == dr.estimate

    def test_chunk_size_is_pinned_but_source_is_not(self, pipeline):
        """``chunk_episodes`` is part of FQE's numerical recipe (the
        shuffle rng runs per chunk) — what must NOT matter is whether
        the chunks come from memory or from disk."""
        episodes, dataset, target, fresh_eval_net = pipeline
        opts = {**FQE_OPTS, "chunk_episodes": 1}
        memory = fitted_q_evaluation(episodes, target, fresh_eval_net(),
                                     **opts)
        disk = fitted_q_evaluation(dataset, target, fresh_eval_net(),
                                   **opts)
        assert disk.value == memory.value
        assert disk.losses == memory.losses

    def test_suite_report_shape(self, pipeline):
        _, dataset, target, fresh_eval_net = pipeline
        report = run_ope_suite(dataset, target, fresh_eval_net(), clip=10.0,
                               n_boot=50, fqe_options=FQE_OPTS)
        assert set(report.estimates) == set(SUITE_METHODS)
        assert report.transitions == dataset.num_transitions
        for method in SUITE_METHODS:
            est = report[method]
            assert est.lower <= est.estimate <= est.upper
        payload = json.loads(report.to_json())
        assert payload["estimates"]["DR"]["lower"] == report["DR"].lower
        assert payload["estimates"]["FQE"]["ess"] is None  # model-based


# ----------------------------------------------------------------------
# behaviour-support diagnostics
# ----------------------------------------------------------------------
def bandit_episode(action, behavior_prob, reward, seed=None):
    features = FeatureSet(node=np.zeros((1, 1)), plc=np.zeros((1, 1)),
                          glob=np.zeros(1))
    return LoggedEpisode(
        steps=[LoggedStep(action, behavior_prob, reward, features=features,
                          mask=np.ones(2, dtype=bool))],
        gamma=1.0, seed=seed,
    )


class UniformTarget:
    def action_probs(self, features, mask):
        return np.full(2, 0.5)


class TestSupportDiagnostics:
    def test_zero_behavior_prob_names_episode_and_step(self):
        episodes = [bandit_episode(0, 0.5, 1.0, seed=7),
                    bandit_episode(1, 0.0, 1.0, seed=8)]
        with pytest.raises(BehaviorSupportError) as excinfo:
            ordinary_importance_sampling(episodes, UniformTarget())
        message = str(excinfo.value)
        assert "episode 1" in message and "step 0" in message
        assert "behaviour probability is zero" in message

    def test_effective_sample_size_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="weight 1"):
            effective_sample_size(np.array([1.0, np.inf, 2.0]))
        with pytest.raises(ValueError, match="non-finite"):
            effective_sample_size(np.array([np.nan]))
        assert effective_sample_size(np.array([0.0, 0.0])) == 0.0


class TestBootstrapRatioCI:
    def test_point_estimate_is_self_normalized(self):
        weights = np.array([1.0, 3.0])
        values = np.array([2.0, 10.0])
        estimate, lower, upper = bootstrap_ratio_ci(weights, values,
                                                    n_boot=200, seed=0)
        assert estimate == pytest.approx(8.0)  # (1*2 + 3*10) / 4
        assert lower <= estimate <= upper

    def test_degenerate_weights_give_zero(self):
        estimate, lower, upper = bootstrap_ratio_ci(
            np.zeros(3), np.ones(3), n_boot=50, seed=0)
        assert (estimate, lower, upper) == (0.0, 0.0, 0.0)

    def test_interval_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = rng.normal(5.0, 1.0, size=20)
        large = rng.normal(5.0, 1.0, size=2000)
        _, lo_s, hi_s = bootstrap_ratio_ci(np.ones(20), small, seed=1)
        _, lo_l, hi_l = bootstrap_ratio_ci(np.ones(2000), large, seed=1)
        assert (hi_l - lo_l) < (hi_s - lo_s)


# ----------------------------------------------------------------------
# the promotion gate
# ----------------------------------------------------------------------
def seed_report(store, run_id, lower, *, estimator="DR"):
    store.create_run("ope-report", run_id=run_id)
    store.mark_running(run_id)
    store.finish_run(run_id, metrics={
        "estimates": {estimator: {"estimate": lower + 1.0, "lower": lower,
                                  "upper": lower + 2.0}},
        "episodes": 3,
    })


class TestPromotionGate:
    def test_promote_against_value_floor(self, tmp_path):
        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            seed_report(store, "cand", lower=10.0)
            decision = promote_checkpoint(store, "cand", -5.0)
            assert decision["verdict"] == "promote"
            assert decision["baseline_run_id"] is None
            assert decision["candidate_lower"] == 10.0
            rows = store.promotions(candidate_run_id="cand")
            assert len(rows) == 1
            assert rows[0]["verdict"] == "promote"
            assert rows[0]["promotion_id"] == decision["promotion_id"]

    def test_hold_when_lower_bound_does_not_clear_margin(self, tmp_path):
        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            seed_report(store, "cand", lower=10.0)
            seed_report(store, "base", lower=9.5)
            assert promote_checkpoint(store, "cand", "base")["verdict"] \
                == "promote"
            held = promote_checkpoint(store, "cand", "base", min_margin=1.0)
            assert held["verdict"] == "hold"
            assert held["baseline_lower"] == 9.5
            # append-only history: both decisions persist, newest first
            rows = store.promotions(candidate_run_id="cand")
            assert [r["verdict"] for r in rows] == ["hold", "promote"]

    def test_gate_compares_lower_bounds_not_estimates(self, tmp_path):
        """A high point estimate with a wide interval must not promote
        over a tighter baseline — the pessimistic-bound rule."""
        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            store.create_run("ope-report", run_id="noisy")
            store.mark_running("noisy")
            store.finish_run("noisy", metrics={"estimates": {
                "DR": {"estimate": 100.0, "lower": 1.0, "upper": 199.0}}})
            seed_report(store, "steady", lower=5.0)
            assert promote_checkpoint(store, "noisy", "steady")["verdict"] \
                == "hold"

    def test_diagnostic_errors(self, tmp_path):
        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            with pytest.raises(PromotionError, match="unknown run"):
                promote_checkpoint(store, "ghost", 0.0)
            run_id = store.create_run("evaluate")
            with pytest.raises(PromotionError, match="not an ope-report"):
                promote_checkpoint(store, run_id, 0.0)
            store.create_run("ope-report", run_id="queued-only")
            with pytest.raises(PromotionError, match="status"):
                promote_checkpoint(store, "queued-only", 0.0)
            seed_report(store, "cand", lower=1.0, estimator="WIS")
            with pytest.raises(PromotionError, match="no 'DR' estimate"):
                promote_checkpoint(store, "cand", 0.0)
            assert report_lower_bound(store, "cand", "WIS") == 1.0

    def test_service_promote_validates_payload(self, tmp_path):
        from repro.serve import EvalService, JobError

        service = EvalService(str(tmp_path / "runs.sqlite"))
        seed_report(service.store, "cand", lower=3.0)
        decision = service.promote({"run_id": "cand", "baseline": 0.0})
        assert decision["verdict"] == "promote"
        with pytest.raises(JobError, match="run_id"):
            service.promote({"baseline": 0.0})
        with pytest.raises(JobError, match="baseline"):
            service.promote({"run_id": "cand", "baseline": True})
        with pytest.raises(JobError, match="min_margin"):
            service.promote({"run_id": "cand", "baseline": 0.0,
                             "min_margin": "lots"})
        with pytest.raises(JobError, match="unknown run"):
            service.promote({"run_id": "ghost", "baseline": 0.0})
        service.store.close()

    def test_promotion_over_http(self, tmp_path):
        from test_serve_service import ServerHandle

        with ServerHandle(tmp_path / "runs.sqlite") as server:
            seed_report(server.service.store, "cand", lower=2.0)
            decision = server.client.promote("cand", 0.0)
            assert decision["verdict"] == "promote"
            held = server.client.promote("cand", 99.0, min_margin=1.0)
            assert held["verdict"] == "hold"
            rows = server.client.promotions(candidate="cand")
            assert [r["verdict"] for r in rows] == ["hold", "promote"]
            from repro.serve import ServeRequestError

            with pytest.raises(ServeRequestError):
                server.client.promote("ghost", 0.0)


# ----------------------------------------------------------------------
# the CLI verbs, end to end (the ope-smoke CI job's path)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestOPECli:
    def test_record_report_promote(self, tmp_path, capsys):
        trace = tmp_path / "trace"
        db = tmp_path / "runs.sqlite"
        assert cli_main([
            "ope", "record", "--preset", "tiny", "--episodes", "2",
            "--max-steps", "6", "--num-envs", "2", "--seed", "1",
            "--out", str(trace),
        ]) in (0, None)
        assert (trace / "manifest.json").exists()

        report_json = tmp_path / "report.json"
        assert cli_main([
            "ope", "report", str(trace), "--n-boot", "50", "--clip", "10",
            "--fqe-iterations", "1", "--json", str(report_json),
            "--store", str(db), "--run-id", "cand",
        ]) in (0, None)
        report = json.loads(report_json.read_text())
        assert set(report["estimates"]) == set(SUITE_METHODS)
        capsys.readouterr()

        # the CI gate contract: promote -> exit 0, hold -> exit 1
        assert cli_main([
            "ope", "promote", "--store", str(db), "cand", "--",
            "-1000000",
        ]) in (0, None)
        with pytest.raises(SystemExit) as excinfo:
            raise SystemExit(cli_main([
                "ope", "promote", "--store", str(db), "cand", "--",
                "1000000",
            ]))
        assert excinfo.value.code == 1
        # unusable inputs exit 2, never 1: a gating job must be able to
        # tell an operator error from a hold verdict
        assert cli_main([
            "ope", "promote", "--store", str(db), "ghost", "--", "0",
        ]) == 2
        with RunStore(str(db)) as store:
            verdicts = [r["verdict"] for r in
                        store.promotions(candidate_run_id="cand")]
        assert verdicts == ["hold", "promote"]
