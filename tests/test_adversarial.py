"""Tests for the adversarial package: parameter space, CEM best
response, the attacker -> scenario bridge, vectorized fitness,
self-play loop (scenario emission + population persistence), and
robustness matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adversarial import (
    AttackerParameterSpace,
    AttackerPopulation,
    CrossEntropySearch,
    ParameterSpec,
    SelfPlayConfig,
    SelfPlayLoop,
    as_base_spec,
    attack_utility,
    evaluate_attackers_vec,
    format_matrix,
    load_population,
    make_defender_fitness,
    make_defender_fitness_vec,
    robustness_matrix,
    save_population,
    scenario_for_attacker,
)
from repro.attacker import apt1, apt2
from repro.config import APTConfig, tiny_network
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.scenarios.registry import REGISTRY


class TestParameterSpec:
    def test_float_decode_endpoints(self):
        spec = ParameterSpec("cleanup_effectiveness", 0.1, 0.9)
        assert spec.decode(0.0) == pytest.approx(0.1)
        assert spec.decode(1.0) == pytest.approx(0.9)

    def test_int_decode_rounds(self):
        spec = ParameterSpec("lateral_threshold", 1, 6, kind="int")
        assert spec.decode(0.0) == 1
        assert spec.decode(1.0) == 6
        assert isinstance(spec.decode(0.5), int)

    def test_choice_decode_partitions_unit_interval(self):
        spec = ParameterSpec("objective", 0, 1, kind="choice",
                             choices=("disrupt", "destroy"))
        assert spec.decode(0.25) == "disrupt"
        assert spec.decode(0.75) == "destroy"
        assert spec.decode(1.0) == "destroy"  # boundary stays in range

    def test_decode_clips_out_of_box_inputs(self):
        spec = ParameterSpec("labor_rate", 1, 4, kind="int")
        assert spec.decode(-3.0) == 1
        assert spec.decode(7.0) == 4

    def test_encode_decode_roundtrip_float(self):
        spec = ParameterSpec("cleanup_effectiveness", 0.0, 1.0)
        for value in (0.0, 0.3, 0.77, 1.0):
            assert spec.decode(spec.encode(value)) == pytest.approx(value)

    def test_encode_decode_roundtrip_choice(self):
        spec = ParameterSpec("vector", 0, 1, kind="choice",
                             choices=("opc", "hmi"))
        for value in ("opc", "hmi"):
            assert spec.decode(spec.encode(value)) == value

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 2.0, 1.0)

    def test_rejects_single_choice(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 0, 1, kind="choice", choices=("only",))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 0, 1, kind="bool")


class TestAttackerParameterSpace:
    def test_sample_produces_valid_config(self):
        space = AttackerParameterSpace()
        rng = np.random.default_rng(0)
        for _ in range(20):
            apt = space.sample(rng)
            assert isinstance(apt, APTConfig)
            assert 1 <= apt.lateral_threshold <= 6
            assert 0.05 <= apt.cleanup_effectiveness <= 0.95
            assert apt.objective in ("disrupt", "destroy")

    def test_base_fields_preserved(self):
        base = APTConfig(time_scale=8.0, reintrusion_hours=33)
        space = AttackerParameterSpace(base=base)
        apt = space.sample(np.random.default_rng(1))
        assert apt.time_scale == 8.0
        assert apt.reintrusion_hours == 33

    def test_encode_decode_roundtrip_on_paper_profiles(self):
        space = AttackerParameterSpace()
        for profile in (apt1(), apt2()):
            decoded = space.decode(space.encode(profile))
            assert decoded.lateral_threshold == profile.lateral_threshold
            assert decoded.plc_threshold_destroy == profile.plc_threshold_destroy
            assert decoded.objective == profile.objective
            assert decoded.vector == profile.vector

    def test_decode_rejects_wrong_dim(self):
        space = AttackerParameterSpace()
        with pytest.raises(ValueError):
            space.decode(np.zeros(space.dim + 1))

    def test_rejects_duplicate_names(self):
        spec = ParameterSpec("labor_rate", 1, 4, kind="int")
        with pytest.raises(ValueError):
            AttackerParameterSpace(specs=(spec, spec))

    @given(st.lists(st.floats(-2, 3), min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_any_vector_decodes_to_valid_config(self, values):
        """Decoding never produces an APTConfig that fails validation
        (APTConfig.__post_init__ raises on out-of-range values)."""
        space = AttackerParameterSpace()
        apt = space.decode(space.clip(np.array(values)))
        assert isinstance(apt, APTConfig)


class TestCrossEntropySearch:
    def _quadratic_space(self):
        """Search space where fitness peaks at a known interior point."""
        return AttackerParameterSpace(
            specs=(
                ParameterSpec("cleanup_effectiveness", 0.0, 1.0),
                ParameterSpec("lateral_threshold", 1, 6, kind="int"),
            )
        )

    def test_converges_on_synthetic_quadratic(self):
        space = self._quadratic_space()
        target = 0.8

        def fitness(apt: APTConfig) -> float:
            return -((apt.cleanup_effectiveness - target) ** 2)

        search = CrossEntropySearch(space, fitness, population=16, seed=0)
        result = search.run(iterations=12)
        assert result.best_config.cleanup_effectiveness == pytest.approx(
            target, abs=0.08
        )
        assert result.evaluations == 16 * 12

    def test_history_tracks_monotone_best(self):
        space = self._quadratic_space()
        search = CrossEntropySearch(
            space, lambda apt: -apt.cleanup_effectiveness, population=8, seed=1
        )
        result = search.run(iterations=5)
        best_series = [h[2] for h in result.history]
        assert best_series == sorted(best_series)

    def test_rejects_tiny_population(self):
        space = self._quadratic_space()
        with pytest.raises(ValueError):
            CrossEntropySearch(space, lambda apt: 0.0, population=1)

    def test_rejects_bad_elite_frac(self):
        space = self._quadratic_space()
        with pytest.raises(ValueError):
            CrossEntropySearch(space, lambda apt: 0.0, elite_frac=0.0)

    def test_requires_exactly_one_fitness(self):
        space = self._quadratic_space()
        with pytest.raises(ValueError):
            CrossEntropySearch(space)
        with pytest.raises(ValueError):
            CrossEntropySearch(space, lambda apt: 0.0,
                               batch_fitness_fn=lambda apts: np.zeros(1))

    def test_batch_fitness_matches_sequential_search(self):
        """Same rng seed + numerically identical fitness => the batch
        and per-candidate engines return identical results."""
        space = self._quadratic_space()
        fitness = lambda apt: -((apt.cleanup_effectiveness - 0.6) ** 2)  # noqa: E731
        seq = CrossEntropySearch(space, fitness, population=8, seed=3)
        batch = CrossEntropySearch(
            space, population=8, seed=3,
            batch_fitness_fn=lambda apts: np.array([fitness(a) for a in apts]),
        )
        a = seq.run(iterations=4)
        b = batch.run(iterations=4)
        assert a.best_fitness == b.best_fitness
        assert a.best_config == b.best_config
        assert a.history == b.history

    def test_batch_fitness_shape_validated(self):
        space = self._quadratic_space()
        search = CrossEntropySearch(
            space, population=4, seed=0,
            batch_fitness_fn=lambda apts: np.zeros(len(apts) + 1),
        )
        with pytest.raises(ValueError):
            search.run(iterations=1)

    def test_fixed_defender_fitness_runs(self):
        cfg = tiny_network(tmax=40)
        fitness = make_defender_fitness(cfg, NoopPolicy(), episodes=1,
                                        max_steps=40)
        utility = fitness(cfg.apt)
        assert np.isfinite(utility)

    def test_undefended_network_is_more_exploitable(self):
        """The attacker's utility against no defense must beat its
        utility against the playbook on identical seeds."""
        cfg = tiny_network(tmax=120)
        apt = cfg.apt
        noop = make_defender_fitness(cfg, NoopPolicy(), episodes=2,
                                     max_steps=120)(apt)
        playbook = make_defender_fitness(cfg, PlaybookPolicy(), episodes=2,
                                         max_steps=120)(apt)
        assert noop >= playbook


class TestAttackerPopulation:
    def test_uniform_weights_by_default(self):
        pop = AttackerPopulation([apt1(), apt2()])
        assert np.allclose(pop.probabilities, [0.5, 0.5])

    def test_add_extends(self):
        pop = AttackerPopulation([apt1()])
        pop.add(apt2(), weight=3.0)
        assert len(pop) == 2
        assert np.allclose(pop.probabilities, [0.25, 0.75])

    def test_sample_respects_weights(self):
        pop = AttackerPopulation([apt1(), apt2()], weights=[0.0, 1.0])
        rng = np.random.default_rng(0)
        assert all(pop.sample(rng) == apt2() for _ in range(10))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AttackerPopulation([])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            AttackerPopulation([apt1()], weights=[-1.0])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            AttackerPopulation([apt1()], weights=[1.0, 2.0])


class TestRobustnessMatrix:
    def test_matrix_shape_and_metrics(self):
        cfg = tiny_network(tmax=30)
        matrix = robustness_matrix(
            cfg,
            defenders={"noop": NoopPolicy(), "random": SemiRandomPolicy(seed=0)},
            attackers={"APT1": apt1(time_scale=10.0),
                       "APT2": apt2(time_scale=10.0)},
            episodes=1,
            max_steps=30,
        )
        assert set(matrix) == {"noop", "random"}
        for row in matrix.values():
            assert set(row) == {"APT1", "APT2"}
            for agg in row.values():
                assert np.isfinite(agg.mean("discounted_return"))

    def test_format_matrix_contains_all_names(self):
        cfg = tiny_network(tmax=20)
        matrix = robustness_matrix(
            cfg, {"noop": NoopPolicy()}, {"APT1": apt1(time_scale=10.0)},
            episodes=1, max_steps=20,
        )
        text = format_matrix(matrix, metric="avg_it_cost")
        assert "noop" in text and "APT1" in text

    def test_identical_seeds_make_cells_comparable(self):
        """The same defender twice gives identical cells."""
        cfg = tiny_network(tmax=30)
        matrix = robustness_matrix(
            cfg,
            {"a": NoopPolicy(), "b": NoopPolicy()},
            {"APT1": apt1(time_scale=10.0)},
            episodes=2, max_steps=30,
        )
        assert (
            matrix["a"]["APT1"].mean("discounted_return")
            == matrix["b"]["APT1"].mean("discounted_return")
        )


class TestScenarioBridge:
    """APTConfig <-> ScenarioSpec bridge (the registry emission path)."""

    def test_as_base_spec_accepts_id_spec_and_config(self):
        from_id = as_base_spec("inasim-tiny-v1")
        assert from_id.scenario_id == "inasim-tiny-v1"
        spec = repro.get_scenario("inasim-tiny-v1")
        assert as_base_spec(spec) is spec
        from_config = as_base_spec(tiny_network(tmax=40))
        assert from_config.network == "tiny"
        assert from_config.horizon == 40

    def test_as_base_spec_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_base_spec(42)

    def test_config_bridge_rejects_custom_topology(self):
        from dataclasses import replace

        from repro.config import TopologyConfig

        cfg = replace(tiny_network(), topology=TopologyConfig(plcs=7))
        with pytest.raises(ValueError):
            as_base_spec(cfg)

    @given(st.lists(st.floats(0, 1, allow_nan=False), min_size=8,
                    max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_bridged_spec_reconstructs_any_searched_attacker(self, values):
        """For every point of the search space, the emitted spec's
        build_config reproduces the APTConfig exactly."""
        cfg = tiny_network(tmax=30)
        space = AttackerParameterSpace(base=cfg.apt)
        apt = space.decode(np.array(values))
        spec = scenario_for_attacker(cfg, apt, "bridge-roundtrip")
        assert spec.build_config().apt == apt
        # and it survives JSON (the persistence path)
        from repro.scenarios import spec_from_json, spec_to_json

        assert spec_from_json(spec_to_json(spec)).build_config().apt == apt

    def test_sampled_pair_stays_sampled(self):
        cfg = tiny_network()
        spec = scenario_for_attacker(cfg, apt2(), "bridge-sampled",
                                     sample_qualitative=True)
        assert spec.objective is None and spec.vector is None
        assert spec.sample_qualitative
        assert spec.build_config().apt.lateral_threshold == 1

    def test_fitness_env_resolves_through_make(self):
        """The candidate env equals repro.make of the bridged spec."""
        cfg = tiny_network(tmax=30)
        apt = apt2(time_scale=10.0)
        spec = scenario_for_attacker(cfg, apt, "bridge-env")
        env = repro.make(spec)
        assert env.config.apt == apt
        assert env.scenario.scenario_id == "bridge-env"


class TestVectorizedFitness:
    def test_batch_matches_sequential_utilities(self):
        """The vectorized candidate fan-out is a wall-clock
        optimization, not a different experiment: utilities equal the
        sequential fitness exactly."""
        cfg = tiny_network(tmax=40)
        space = AttackerParameterSpace(base=cfg.apt)
        rng = np.random.default_rng(0)
        candidates = [space.sample(rng) for _ in range(3)]
        seq = make_defender_fitness(cfg, PlaybookPolicy(), episodes=2,
                                    seed=5, max_steps=40)
        batch = make_defender_fitness_vec(cfg, PlaybookPolicy(), episodes=2,
                                          seed=5, max_steps=40)
        sequential = np.array([seq(apt) for apt in candidates])
        np.testing.assert_array_equal(batch(candidates), sequential)

    def test_process_backend_matches_too(self):
        cfg = tiny_network(tmax=30)
        space = AttackerParameterSpace(base=cfg.apt)
        rng = np.random.default_rng(1)
        candidates = [space.sample(rng) for _ in range(2)]
        sync = make_defender_fitness_vec(cfg, NoopPolicy(), episodes=1,
                                         seed=2, max_steps=30)
        proc = make_defender_fitness_vec(cfg, NoopPolicy(), episodes=1,
                                         seed=2, max_steps=30,
                                         backend="process", num_workers=2)
        np.testing.assert_array_equal(sync(candidates), proc(candidates))

    def test_evaluate_attackers_vec_returns_per_attacker_aggregates(self):
        cfg = tiny_network(tmax=30)
        per_lane = evaluate_attackers_vec(
            cfg, [apt1(time_scale=10.0), apt2(time_scale=10.0)],
            NoopPolicy(), episodes=2, seed=0, max_steps=30,
        )
        assert len(per_lane) == 2
        for aggregate, episodes in per_lane:
            assert aggregate.episodes == 2
            assert len(episodes) == 2
            assert np.isfinite(aggregate.mean("discounted_return"))


def _tiny_loop(tiny_tables, run_name, **selfplay_overrides):
    from repro.defenders.acso import ACSOPolicy
    from repro.rl import (
        ACSOFeaturizer,
        AttentionQNetwork,
        DQNConfig,
        DQNTrainer,
        QNetConfig,
    )

    cfg = tiny_network(tmax=30)
    env = repro.make_env(cfg, seed=0)
    qnet = AttentionQNetwork(
        QNetConfig(d_model=8, n_heads=2, encoder_hidden=16, head_hidden=16),
        seed=0,
    )
    featurizer = ACSOFeaturizer(env.topology, tiny_tables)
    trainer = DQNTrainer(
        env, qnet, featurizer,
        DQNConfig(batch_size=8, warmup=8, update_every=4, buffer_size=500),
    )
    params = dict(
        rounds=1, train_episodes=1, train_max_steps=15,
        cem_iterations=1, cem_population=2, fitness_episodes=1,
        eval_episodes=1, eval_max_steps=15, run_name=run_name,
    )
    params.update(selfplay_overrides)
    return SelfPlayLoop(
        cfg, trainer, ACSOPolicy(qnet, tiny_tables),
        selfplay=SelfPlayConfig(**params),
    )


def _unregister_selfplay(run_name):
    for spec in repro.list_scenarios(tag="selfplay"):
        if spec.scenario_id.startswith(f"selfplay/{run_name}-"):
            REGISTRY.unregister(spec.scenario_id)


class TestSelfPlayLoop:
    def test_one_round_structure(self, tiny_tables):
        loop = _tiny_loop(tiny_tables, "t-structure")
        try:
            rounds = loop.run()
            assert len(rounds) == 1
            record = rounds[0]
            assert np.isfinite(record.best_response_utility)
            assert np.isfinite(record.population_utility)
            assert record.exploitability == pytest.approx(
                record.best_response_utility - record.population_utility
            )
            # the best response joined the population as a named spec
            assert len(loop.population) == 2
            emitted = loop.population.members[-1]
            assert emitted.scenario_id == record.best_response_id
            assert emitted is record.best_response_spec
            assert emitted.build_config().apt == record.best_response
        finally:
            _unregister_selfplay("t-structure")

    def test_emitted_scenario_registered_and_reproducible(self, tiny_tables):
        """The acceptance property: repro.make(<emitted id>) rebuilds
        the exact environment, so replaying the winning fitness
        evaluation reproduces the recorded utility."""
        loop = _tiny_loop(tiny_tables, "t-reproduce")
        try:
            record = loop.run_round()
            sid = record.best_response_id
            assert sid == "selfplay/t-reproduce-r1-br1"
            assert sid in REGISTRY
            spec = repro.get_scenario(sid)
            assert set(spec.tags) >= {"selfplay", "adversarial"}
            # verified in-round against the frozen defender
            assert record.verified_utility == record.best_response_utility
            # and independently, from scratch, through the registry
            from repro.eval import evaluate_policy

            env = repro.make(sid)
            aggregate, _ = evaluate_policy(
                env, loop.defender_policy, loop.selfplay.fitness_episodes,
                seed=record.fitness_seed,
                max_steps=loop.selfplay.eval_max_steps,
            )
            assert attack_utility(aggregate) == record.best_response_utility
        finally:
            _unregister_selfplay("t-reproduce")

    def test_population_registry_round_trip_identical_exploitability(
            self, tiny_tables, tmp_path):
        """A population survives save -> registry wipe -> load with
        bit-identical exploitability numbers."""
        loop = _tiny_loop(tiny_tables, "t-roundtrip")
        path = tmp_path / "population.json"
        try:
            loop.run()
            seed = loop.selfplay.seed + 12345
            before = loop._population_utility(seed)
            loop.save(path)
            # wipe the emitted ids; loading must restore them
            _unregister_selfplay("t-roundtrip")
            assert "selfplay/t-roundtrip-r1-br1" not in REGISTRY
            restored = load_population(path)
            assert "selfplay/t-roundtrip-r1-br1" in REGISTRY
            assert [m.scenario_id for m in restored.members] == [
                m.scenario_id for m in loop.population.members
            ]
            np.testing.assert_array_equal(restored.weights,
                                          loop.population.weights)
            loop.population = restored
            after = loop._population_utility(seed)
            assert before == after
        finally:
            _unregister_selfplay("t-roundtrip")

    def test_process_backend_round(self, tiny_tables):
        """A full oracle round also runs on the process backend."""
        loop = _tiny_loop(tiny_tables, "t-process", backend="process",
                          num_workers=2)
        try:
            record = loop.run_round()
            assert np.isfinite(record.best_response_utility)
            assert record.verified_utility == record.best_response_utility
        finally:
            _unregister_selfplay("t-process")

    def test_accepts_scenario_id_base(self, tiny_tables):
        loop = _tiny_loop(tiny_tables, "unused")
        trainer, policy = loop.trainer, loop.defender_policy
        loop2 = SelfPlayLoop(
            "inasim-tiny-v1", trainer, policy,
            selfplay=SelfPlayConfig(run_name="t-by-id"),
        )
        assert loop2.base_spec.scenario_id == "inasim-tiny-v1"
        assert loop2.population.members[0].scenario_id == \
            "selfplay/t-by-id-base"

    def test_initial_population_aptconfigs_are_bridged(self, tiny_tables):
        loop = _tiny_loop(tiny_tables, "unused2")
        pop = AttackerPopulation([apt1(), apt2()], weights=[1.0, 3.0])
        loop2 = SelfPlayLoop(
            tiny_network(tmax=30), loop.trainer, loop.defender_policy,
            selfplay=SelfPlayConfig(run_name="t-coerce"),
            initial_population=pop,
        )
        members = loop2.population.members
        assert [m.scenario_id for m in members] == [
            "selfplay/t-coerce-init0", "selfplay/t-coerce-init1"
        ]
        assert members[1].build_config().apt.lateral_threshold == 1
        np.testing.assert_array_equal(loop2.population.weights, [1.0, 3.0])

    def test_save_population_rejects_raw_members(self, tmp_path):
        pop = AttackerPopulation([apt1()])
        with pytest.raises(TypeError):
            save_population(tmp_path / "x.json", pop)

    def test_load_population_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-population.json"
        path.write_text('{"scenarios": []}')
        with pytest.raises(ValueError):
            load_population(path)

    def test_attack_utility_sign(self):
        """Higher defender return means lower attacker utility."""

        class FakeAgg:
            def __init__(self, value):
                self.value = value

            def mean(self, metric):
                return self.value

        assert attack_utility(FakeAgg(2000.0)) < attack_utility(FakeAgg(1000.0))
