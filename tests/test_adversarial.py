"""Tests for the adversarial package: parameter space, CEM best
response, self-play loop, and robustness matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.adversarial import (
    AttackerParameterSpace,
    AttackerPopulation,
    CrossEntropySearch,
    ParameterSpec,
    SelfPlayConfig,
    SelfPlayLoop,
    attack_utility,
    format_matrix,
    make_defender_fitness,
    robustness_matrix,
)
from repro.attacker import apt1, apt2
from repro.config import APTConfig, tiny_network
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy


class TestParameterSpec:
    def test_float_decode_endpoints(self):
        spec = ParameterSpec("cleanup_effectiveness", 0.1, 0.9)
        assert spec.decode(0.0) == pytest.approx(0.1)
        assert spec.decode(1.0) == pytest.approx(0.9)

    def test_int_decode_rounds(self):
        spec = ParameterSpec("lateral_threshold", 1, 6, kind="int")
        assert spec.decode(0.0) == 1
        assert spec.decode(1.0) == 6
        assert isinstance(spec.decode(0.5), int)

    def test_choice_decode_partitions_unit_interval(self):
        spec = ParameterSpec("objective", 0, 1, kind="choice",
                             choices=("disrupt", "destroy"))
        assert spec.decode(0.25) == "disrupt"
        assert spec.decode(0.75) == "destroy"
        assert spec.decode(1.0) == "destroy"  # boundary stays in range

    def test_decode_clips_out_of_box_inputs(self):
        spec = ParameterSpec("labor_rate", 1, 4, kind="int")
        assert spec.decode(-3.0) == 1
        assert spec.decode(7.0) == 4

    def test_encode_decode_roundtrip_float(self):
        spec = ParameterSpec("cleanup_effectiveness", 0.0, 1.0)
        for value in (0.0, 0.3, 0.77, 1.0):
            assert spec.decode(spec.encode(value)) == pytest.approx(value)

    def test_encode_decode_roundtrip_choice(self):
        spec = ParameterSpec("vector", 0, 1, kind="choice",
                             choices=("opc", "hmi"))
        for value in ("opc", "hmi"):
            assert spec.decode(spec.encode(value)) == value

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 2.0, 1.0)

    def test_rejects_single_choice(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 0, 1, kind="choice", choices=("only",))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ParameterSpec("x", 0, 1, kind="bool")


class TestAttackerParameterSpace:
    def test_sample_produces_valid_config(self):
        space = AttackerParameterSpace()
        rng = np.random.default_rng(0)
        for _ in range(20):
            apt = space.sample(rng)
            assert isinstance(apt, APTConfig)
            assert 1 <= apt.lateral_threshold <= 6
            assert 0.05 <= apt.cleanup_effectiveness <= 0.95
            assert apt.objective in ("disrupt", "destroy")

    def test_base_fields_preserved(self):
        base = APTConfig(time_scale=8.0, reintrusion_hours=33)
        space = AttackerParameterSpace(base=base)
        apt = space.sample(np.random.default_rng(1))
        assert apt.time_scale == 8.0
        assert apt.reintrusion_hours == 33

    def test_encode_decode_roundtrip_on_paper_profiles(self):
        space = AttackerParameterSpace()
        for profile in (apt1(), apt2()):
            decoded = space.decode(space.encode(profile))
            assert decoded.lateral_threshold == profile.lateral_threshold
            assert decoded.plc_threshold_destroy == profile.plc_threshold_destroy
            assert decoded.objective == profile.objective
            assert decoded.vector == profile.vector

    def test_decode_rejects_wrong_dim(self):
        space = AttackerParameterSpace()
        with pytest.raises(ValueError):
            space.decode(np.zeros(space.dim + 1))

    def test_rejects_duplicate_names(self):
        spec = ParameterSpec("labor_rate", 1, 4, kind="int")
        with pytest.raises(ValueError):
            AttackerParameterSpace(specs=(spec, spec))

    @given(st.lists(st.floats(-2, 3), min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_any_vector_decodes_to_valid_config(self, values):
        """Decoding never produces an APTConfig that fails validation
        (APTConfig.__post_init__ raises on out-of-range values)."""
        space = AttackerParameterSpace()
        apt = space.decode(space.clip(np.array(values)))
        assert isinstance(apt, APTConfig)


class TestCrossEntropySearch:
    def _quadratic_space(self):
        """Search space where fitness peaks at a known interior point."""
        return AttackerParameterSpace(
            specs=(
                ParameterSpec("cleanup_effectiveness", 0.0, 1.0),
                ParameterSpec("lateral_threshold", 1, 6, kind="int"),
            )
        )

    def test_converges_on_synthetic_quadratic(self):
        space = self._quadratic_space()
        target = 0.8

        def fitness(apt: APTConfig) -> float:
            return -((apt.cleanup_effectiveness - target) ** 2)

        search = CrossEntropySearch(space, fitness, population=16, seed=0)
        result = search.run(iterations=12)
        assert result.best_config.cleanup_effectiveness == pytest.approx(
            target, abs=0.08
        )
        assert result.evaluations == 16 * 12

    def test_history_tracks_monotone_best(self):
        space = self._quadratic_space()
        search = CrossEntropySearch(
            space, lambda apt: -apt.cleanup_effectiveness, population=8, seed=1
        )
        result = search.run(iterations=5)
        best_series = [h[2] for h in result.history]
        assert best_series == sorted(best_series)

    def test_rejects_tiny_population(self):
        space = self._quadratic_space()
        with pytest.raises(ValueError):
            CrossEntropySearch(space, lambda apt: 0.0, population=1)

    def test_rejects_bad_elite_frac(self):
        space = self._quadratic_space()
        with pytest.raises(ValueError):
            CrossEntropySearch(space, lambda apt: 0.0, elite_frac=0.0)

    def test_fixed_defender_fitness_runs(self):
        cfg = tiny_network(tmax=40)
        fitness = make_defender_fitness(cfg, NoopPolicy(), episodes=1,
                                        max_steps=40)
        utility = fitness(cfg.apt)
        assert np.isfinite(utility)

    def test_undefended_network_is_more_exploitable(self):
        """The attacker's utility against no defense must beat its
        utility against the playbook on identical seeds."""
        cfg = tiny_network(tmax=120)
        apt = cfg.apt
        noop = make_defender_fitness(cfg, NoopPolicy(), episodes=2,
                                     max_steps=120)(apt)
        playbook = make_defender_fitness(cfg, PlaybookPolicy(), episodes=2,
                                         max_steps=120)(apt)
        assert noop >= playbook


class TestAttackerPopulation:
    def test_uniform_weights_by_default(self):
        pop = AttackerPopulation([apt1(), apt2()])
        assert np.allclose(pop.probabilities, [0.5, 0.5])

    def test_add_extends(self):
        pop = AttackerPopulation([apt1()])
        pop.add(apt2(), weight=3.0)
        assert len(pop) == 2
        assert np.allclose(pop.probabilities, [0.25, 0.75])

    def test_sample_respects_weights(self):
        pop = AttackerPopulation([apt1(), apt2()], weights=[0.0, 1.0])
        rng = np.random.default_rng(0)
        assert all(pop.sample(rng) == apt2() for _ in range(10))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AttackerPopulation([])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            AttackerPopulation([apt1()], weights=[-1.0])

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValueError):
            AttackerPopulation([apt1()], weights=[1.0, 2.0])


class TestRobustnessMatrix:
    def test_matrix_shape_and_metrics(self):
        cfg = tiny_network(tmax=30)
        matrix = robustness_matrix(
            cfg,
            defenders={"noop": NoopPolicy(), "random": SemiRandomPolicy(seed=0)},
            attackers={"APT1": apt1(time_scale=10.0),
                       "APT2": apt2(time_scale=10.0)},
            episodes=1,
            max_steps=30,
        )
        assert set(matrix) == {"noop", "random"}
        for row in matrix.values():
            assert set(row) == {"APT1", "APT2"}
            for agg in row.values():
                assert np.isfinite(agg.mean("discounted_return"))

    def test_format_matrix_contains_all_names(self):
        cfg = tiny_network(tmax=20)
        matrix = robustness_matrix(
            cfg, {"noop": NoopPolicy()}, {"APT1": apt1(time_scale=10.0)},
            episodes=1, max_steps=20,
        )
        text = format_matrix(matrix, metric="avg_it_cost")
        assert "noop" in text and "APT1" in text

    def test_identical_seeds_make_cells_comparable(self):
        """The same defender twice gives identical cells."""
        cfg = tiny_network(tmax=30)
        matrix = robustness_matrix(
            cfg,
            {"a": NoopPolicy(), "b": NoopPolicy()},
            {"APT1": apt1(time_scale=10.0)},
            episodes=2, max_steps=30,
        )
        assert (
            matrix["a"]["APT1"].mean("discounted_return")
            == matrix["b"]["APT1"].mean("discounted_return")
        )


class TestSelfPlayLoop:
    def test_one_round_structure(self, tiny_tables):
        from repro.defenders.acso import ACSOPolicy
        from repro.rl import (
            ACSOFeaturizer,
            AttentionQNetwork,
            DQNConfig,
            DQNTrainer,
            QNetConfig,
        )

        cfg = tiny_network(tmax=30)
        env = repro.make_env(cfg, seed=0)
        qnet = AttentionQNetwork(
            QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                       head_hidden=16),
            seed=0,
        )
        featurizer = ACSOFeaturizer(env.topology, tiny_tables)
        trainer = DQNTrainer(
            env, qnet, featurizer,
            DQNConfig(batch_size=8, warmup=8, update_every=4,
                      buffer_size=500),
        )
        loop = SelfPlayLoop(
            cfg,
            trainer,
            ACSOPolicy(qnet, tiny_tables),
            selfplay=SelfPlayConfig(
                rounds=1, train_episodes=1, train_max_steps=15,
                cem_iterations=1, cem_population=2, fitness_episodes=1,
                eval_episodes=1, eval_max_steps=15,
            ),
        )
        rounds = loop.run()
        assert len(rounds) == 1
        record = rounds[0]
        assert np.isfinite(record.best_response_utility)
        assert np.isfinite(record.population_utility)
        assert record.exploitability == pytest.approx(
            record.best_response_utility - record.population_utility
        )
        # the best response joined the population
        assert len(loop.population) == 2
        assert loop.population.members[-1] == record.best_response

    def test_attack_utility_sign(self):
        """Higher defender return means lower attacker utility."""

        class FakeAgg:
            def __init__(self, value):
                self.value = value

            def mean(self, metric):
                return self.value

        assert attack_utility(FakeAgg(2000.0)) < attack_utility(FakeAgg(1000.0))
