"""BatchedVectorEnv: bit-exact parity with sync plus adoption contracts.

The batched backend's core guarantee is that its array programs are an
*implementation* detail: every observation, reward, done flag, and info
entry is bit-identical to the sync backend's, lane for lane, step for
step — including across auto-reset boundaries, masked lanes, manual
``reset_env`` calls, and the quiescent-lane fast path (exercised by
noop workloads). The committed golden fixtures must replay identically
through a one-lane batched env.

Also pinned here: the state-adoption contract the batched engine relies
on (every simulator mutation is an in-place element write into the
adopted row views), and the geometry preconditions.
"""

import importlib.util
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.sim.batched_engine import BatchedVectorEnv
from repro.sim.vec_env import VectorEnv

_spec = importlib.util.spec_from_file_location(
    "golden_regenerate",
    pathlib.Path(__file__).parent / "golden" / "regenerate.py",
)
_regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_regen)


# ----------------------------------------------------------------------
# fingerprint helpers: everything a consumer can see, exactly
# ----------------------------------------------------------------------
def _obs_fp(obs):
    return (
        obs.t,
        tuple((a.t, a.severity, a.node_id, a.device_id, a.source)
              for a in obs.alerts),
        tuple((s.t, s.node_id, s.detected) for s in obs.scan_results),
        obs.plc_disrupted.tolist(),
        obs.plc_destroyed.tolist(),
        obs.node_busy.tolist(),
        obs.plc_busy.tolist(),
        obs.quarantined.tolist(),
        tuple(repr(a) for a in obs.completed_actions),
    )


def _info_fp(info):
    out = {}
    for key in sorted(info):
        value = info[key]
        if key == "reward_breakdown":
            out[key] = (value.r_plc, value.r_it, value.r_term,
                        value.total, value.it_cost)
        elif key == "final_observation":
            out[key] = _obs_fp(value)
        elif key == "conditions":
            out[key] = value.tolist()
        elif key in ("launched", "completed"):
            out[key] = None if value is None else tuple(repr(a) for a in value)
        else:
            out[key] = value
    return tuple(sorted(out.items(), key=lambda kv: kv[0]))


def _step_fp(step):
    return (
        tuple(_obs_fp(o) for o in step.observations),
        step.rewards.tolist(),
        step.dones.tolist(),
        tuple(_info_fp(info) for info in step.infos),
    )


def _rollout_fp(venv, steps, seed, action_seed=None, mask_every=None):
    """Full-visibility fingerprint of a seeded rollout.

    ``action_seed=None`` runs the noop workload (the batched fast
    path); otherwise random valid actions (the slow path). With
    ``mask_every=k``, every k-th step masks out half the lanes.
    """
    rng = (None if action_seed is None
           else np.random.default_rng(action_seed))
    obs = venv.reset(seed=seed)
    trace = [tuple(_obs_fp(o) for o in obs)]
    for step_idx in range(steps):
        actions = None if rng is None else venv.sample_actions(rng)
        mask = None
        if mask_every and step_idx % mask_every == 0:
            mask = [i % 2 == 0 for i in range(venv.num_envs)]
        trace.append(_step_fp(venv.step(actions, mask=mask)))
        trace.append(venv.action_masks().tolist())
    return trace


def _pair(scenario, n, seed, horizon=None, auto_reset=True, **kwargs):
    sync = repro.make_vec(scenario, n, seed=seed, horizon=horizon,
                          auto_reset=auto_reset, backend="sync", **kwargs)
    batched = repro.make_vec(scenario, n, seed=seed, horizon=horizon,
                             auto_reset=auto_reset, backend="batched",
                             **kwargs)
    assert isinstance(batched, BatchedVectorEnv)
    return sync, batched


# ----------------------------------------------------------------------
# parity
# ----------------------------------------------------------------------
class TestBatchedParity:
    def test_noop_workload_matches_sync(self):
        """The quiescent-lane fast path is bit-identical to sync."""
        sync, batched = _pair("inasim-tiny-v1", 4, seed=0)
        assert _rollout_fp(sync, 60, seed=17) == \
            _rollout_fp(batched, 60, seed=17)

    def test_random_actions_match_sync(self):
        sync, batched = _pair("inasim-small-v1", 4, seed=0)
        assert _rollout_fp(sync, 40, seed=5, action_seed=9) == \
            _rollout_fp(batched, 40, seed=5, action_seed=9)

    def test_parity_spans_auto_reset_boundaries(self):
        """Reseed schedule seed+i+N*episode survives the batched path."""
        sync, batched = _pair("inasim-tiny-v1", 3, seed=0, horizon=8)
        fp_s = _rollout_fp(sync, 40, seed=3)
        # the horizon guarantees episodes rolled over mid-run
        assert any("final_observation" in dict(info)
                   for entry in fp_s if isinstance(entry, tuple)
                   and len(entry) == 4 for info in entry[3])
        assert fp_s == _rollout_fp(batched, 40, seed=3)

    def test_parity_without_auto_reset(self):
        """Terminal lanes freeze identically when auto_reset is off."""
        sync, batched = _pair("inasim-tiny-v1", 3, seed=0, horizon=8,
                              auto_reset=False)
        assert _rollout_fp(sync, 20, seed=3) == \
            _rollout_fp(batched, 20, seed=3)

    def test_parity_with_masked_lanes(self):
        sync, batched = _pair("inasim-tiny-v1", 4, seed=0, horizon=12)
        assert _rollout_fp(sync, 30, seed=11, mask_every=3) == \
            _rollout_fp(batched, 30, seed=11, mask_every=3)

    def test_parity_on_paper_network(self):
        sync, batched = _pair("inasim-paper-v1", 4, seed=1234)
        assert _rollout_fp(sync, 30, seed=1234) == \
            _rollout_fp(batched, 30, seed=1234)

    def test_parity_without_record_truth(self):
        spec = repro.scenarios.get_scenario("inasim-tiny-v1")
        sync = VectorEnv(
            [spec.build_env(seed=i, record_truth=False) for i in range(3)],
            base_seed=0,
        )
        batched = BatchedVectorEnv(
            [spec.build_env(seed=i, record_truth=False) for i in range(3)],
            base_seed=0,
        )
        fp = _rollout_fp(batched, 25, seed=2)
        assert fp == _rollout_fp(sync, 25, seed=2)
        for entry in fp[1::2]:
            if isinstance(entry, tuple) and len(entry) == 4:
                for info in entry[3]:
                    assert all(k != "conditions" for k, _ in info)

    def test_parity_heterogeneous_configs(self):
        """Same geometry, different reward weights/horizons per lane."""
        specs = ["paper-availability-v1", "paper-cost-sensitive-v1",
                 "paper-stealth-v1"]
        sync = repro.make_vec_from_specs(specs, seed=0, backend="sync")
        batched = repro.make_vec_from_specs(specs, seed=0, backend="batched")
        assert _rollout_fp(sync, 25, seed=6) == \
            _rollout_fp(batched, 25, seed=6)

    def test_reset_env_matches_sync(self):
        """Manual lane resets re-adopt state without breaking parity."""
        sync, batched = _pair("inasim-tiny-v1", 3, seed=0)
        sync.reset(seed=4)
        batched.reset(seed=4)
        for venv in (sync, batched):
            for _ in range(6):
                venv.step(None)
            venv.reset_env(1, seed=99)
        fp_s = [_step_fp(sync.step(None)) for _ in range(20)]
        fp_b = [_step_fp(batched.step(None)) for _ in range(20)]
        assert fp_s == fp_b

    def test_replace_env_readopts(self):
        sync, batched = _pair("inasim-tiny-v1", 2, seed=0)
        sync.reset(seed=1)
        batched.reset(seed=1)
        for venv in (sync, batched):
            venv.step(None)
            venv.replace_env(0, repro.make("inasim-tiny-v1", seed=77))
            venv.reset_env(0, seed=77)
        fp_s = [_step_fp(sync.step(None)) for _ in range(10)]
        fp_b = [_step_fp(batched.step(None)) for _ in range(10)]
        assert fp_s == fp_b


# ----------------------------------------------------------------------
# property fuzz: batched == sync, key for key, under random drive
# ----------------------------------------------------------------------
class TestBatchedParityFuzz:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 4),
        steps=st.integers(4, 20),
        horizon=st.one_of(st.none(), st.integers(5, 12)),
        auto_reset=st.booleans(),
        action_mode=st.sampled_from(["noop", "random", "mixed"]),
    )
    @settings(max_examples=12, deadline=None)
    def test_fuzzed_trajectories_match(self, seed, n, steps, horizon,
                                       auto_reset, action_mode):
        """Every observation field, reward, done, and info entry is
        bit-identical between backends under fuzzed workloads — the
        fast-path gate, auto-reset boundaries, and per-lane RNG
        scheduling all have to agree for this to hold."""
        sync, batched = _pair("inasim-tiny-v1", n, seed=0, horizon=horizon,
                              auto_reset=auto_reset)
        rng_s = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)

        def drive(venv, rng):
            obs = venv.reset(seed=seed)
            trace = [tuple(_obs_fp(o) for o in obs)]
            for step_idx in range(steps):
                if action_mode == "noop":
                    actions = None
                elif action_mode == "random":
                    actions = venv.sample_actions(rng)
                else:
                    actions = (None if step_idx % 2 else
                               venv.sample_actions(rng))
                trace.append(_step_fp(venv.step(actions)))
            return trace

        assert drive(sync, rng_s) == drive(batched, rng_b)


# ----------------------------------------------------------------------
# golden fixtures through the batched backend
# ----------------------------------------------------------------------
def _batched_rollout_digest(scenario_id: str, seed: int, steps: int) -> dict:
    """The golden playbook rollout, driven through a 1-lane batched env."""
    from repro.defenders import PlaybookPolicy

    venv = repro.make_vec(scenario_id, 1, backend="batched")
    obs = venv.reset(seed=seed)[0]
    policy = PlaybookPolicy()
    policy.reset(venv.envs[0])
    rewards, dones, alerts, masks, observations = [], [], [], [], []
    for _ in range(steps):
        masks.append(_regen.mask_digest(venv.action_masks()[0]))
        step = venv.step([policy.act(obs)])
        obs = step.observations[0]
        rewards.append(float(step.rewards[0]))
        dones.append(bool(step.dones[0]))
        alerts.append(len(obs.alerts))
        observations.append(_regen.observation_digest(obs))
        if step.dones[0]:
            break
    return {
        "rewards": rewards,
        "dones": dones,
        "n_alerts": alerts,
        "action_mask_sha256_16": masks,
        "observation_sha256_16": observations,
    }


@pytest.mark.parametrize("scenario_id", [
    "inasim-tiny-v1", "inasim-small-v1", "inasim-paper-v1",
    "paper-destroy-opc-v1", "small-scripted-rush-v1",
])
def test_golden_fixture_replays_through_batched(scenario_id):
    """The committed golden digests replay bit-identically batched.

    auto_reset stays on (the vec default): the digest stops at the
    first done, before any reset divergence could show.
    """
    path = _regen.fixture_path(scenario_id)
    with open(path) as handle:
        golden = json.load(handle)
    fresh = _batched_rollout_digest(scenario_id, seed=golden["seed"],
                                    steps=golden["steps"])
    assert fresh["rewards"] == golden["rewards"]
    assert fresh["dones"] == golden["dones"]
    assert fresh["n_alerts"] == golden["n_alerts"]
    assert fresh["action_mask_sha256_16"] == golden["action_mask_sha256_16"]
    assert fresh["observation_sha256_16"] == golden["observation_sha256_16"]


# ----------------------------------------------------------------------
# adoption + geometry contracts
# ----------------------------------------------------------------------
class TestAdoptionContract:
    def test_lane_state_aliases_batch_rows(self):
        """After adoption every state array is a view of a batch row,
        and engine writes land in the batch arrays (the property the
        whole SoA design rests on)."""
        venv = repro.make_vec("inasim-tiny-v1", 3, backend="batched", seed=0)
        venv.reset(seed=0)
        for i, env in enumerate(venv.envs):
            state = env.sim.state
            assert np.shares_memory(state.conditions, venv._C[i])
            assert np.shares_memory(state.quarantined, venv._QUAR[i])
            assert np.shares_memory(state.plc_firmware, venv._PLC_FW[i])
            assert np.shares_memory(state.node_busy_until,
                                    venv._NODE_BUSY[i])
        # a direct engine-style in-place write is visible batch-side
        venv.envs[1].sim.state.conditions[0, 0] = True
        assert venv._C[1, 0, 0]

    def test_adoption_survives_auto_reset(self):
        venv = repro.make_vec("inasim-tiny-v1", 2, backend="batched",
                              seed=0, horizon=6)
        venv.reset(seed=0)
        for _ in range(15):  # crosses episode boundaries
            venv.step(None)
        for i, env in enumerate(venv.envs):
            assert np.shares_memory(env.sim.state.conditions, venv._C[i])

    def test_mixed_geometry_rejected(self):
        envs = [repro.make("inasim-tiny-v1", seed=0),
                repro.make("inasim-small-v1", seed=0)]
        # the base class already rejects mixed action spaces; the
        # batched subclass adds the node/PLC-count check on top
        with pytest.raises(ValueError,
                           match="geometry|action space"):
            BatchedVectorEnv(envs)

    def test_replace_env_geometry_rejected(self):
        venv = repro.make_vec("inasim-tiny-v1", 2, backend="batched", seed=0)
        venv.reset(seed=0)
        with pytest.raises(ValueError, match="geometry"):
            venv.replace_env(0, repro.make("inasim-small-v1", seed=0))

    def test_observations_are_snapshots(self):
        """Returned observation arrays never alias the live batch rows
        (later steps must not mutate what a consumer already holds)."""
        venv = repro.make_vec("inasim-tiny-v1", 2, backend="batched", seed=0)
        venv.reset(seed=0)
        step = venv.step(None)
        for i, obs in enumerate(step.observations):
            assert not np.shares_memory(obs.quarantined, venv._QUAR[i])
            assert not np.shares_memory(obs.plc_disrupted, venv._PLC_DIS[i])
            assert not np.shares_memory(obs.plc_destroyed, venv._PLC_DES[i])
