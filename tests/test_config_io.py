"""Tests for config JSON serialization."""

import json

import pytest

from repro.config import (
    APTConfig,
    SimConfig,
    TopologyConfig,
    paper_network,
    small_network,
    tiny_network,
)
from repro.config_io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [paper_network, small_network,
                                         tiny_network])
    def test_presets_roundtrip(self, factory):
        config = factory()
        assert config_from_dict(config_to_dict(config)) == config

    def test_roundtrip_through_json_text(self):
        config = tiny_network()
        text = json.dumps(config_to_dict(config))
        assert config_from_dict(json.loads(text)) == config

    def test_file_roundtrip(self, tmp_path):
        config = small_network(tmax=123)
        path = tmp_path / "config.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_custom_values_survive(self):
        config = SimConfig(
            topology=TopologyConfig(l2_workstations=7,
                                    l2_servers=("opc",), l1_hmis=2, plcs=9),
            apt=APTConfig(objective="disrupt", vector="hmi",
                          cleanup_effectiveness=0.77),
            tmax=444,
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config
        assert restored.topology.l2_servers == ("opc",)
        assert restored.apt.cleanup_effectiveness == 0.77


class TestValidation:
    def test_unknown_top_level_field_rejected(self):
        data = config_to_dict(tiny_network())
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            config_from_dict(data)

    def test_unknown_nested_field_rejected(self):
        data = config_to_dict(tiny_network())
        data["apt"]["stealth_level"] = 11
        with pytest.raises(ValueError, match="stealth_level"):
            config_from_dict(data)

    def test_invalid_apt_values_rejected_by_dataclass(self):
        data = config_to_dict(tiny_network())
        data["apt"]["objective"] = "annoy"
        with pytest.raises(ValueError):
            config_from_dict(data)

    def test_missing_sections_default(self):
        config = config_from_dict({"tmax": 77})
        assert config.tmax == 77
        assert config.topology == TopologyConfig()

    def test_saved_file_is_pretty_json(self, tmp_path):
        path = tmp_path / "config.json"
        save_config(tiny_network(), path)
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text)  # valid JSON
        assert "\n  " in text  # indented
