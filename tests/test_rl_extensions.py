"""Tests for the RL extensions: dueling heads, distributional (C51)
learning, the DRQN baseline, the windowed trainer, uniform replay, and
the trainer ablation flags."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.config import tiny_network
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    C51Config,
    C51Trainer,
    ConvQNetwork,
    DQNConfig,
    DRQNConfig,
    DistributionalAttentionQNetwork,
    DuelingAttentionQNetwork,
    DQNTrainer,
    QNetConfig,
    RecurrentQNetwork,
    UniformReplay,
    WindowedDQNTrainer,
    project_distribution,
    stack_features,
)
from repro.rl.features import RawHistoryEncoder
from repro.rl.replay import Transition

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)
FAST_DQN = DQNConfig(batch_size=8, warmup=8, update_every=2,
                     target_update=20, buffer_size=500, n_step=3)


@pytest.fixture()
def env():
    return repro.make_env(tiny_network(tmax=60), seed=0)


@pytest.fixture()
def featurizer(env, tiny_tables):
    return ACSOFeaturizer(env.topology, tiny_tables)


def _features_batch(env, featurizer, batch=2, seed=0):
    obs = env.reset(seed=seed)
    featurizer.reset()
    return stack_features([featurizer.update(obs)] * batch)


class TestDuelingNetwork:
    def test_output_shape_matches_action_space(self, env, featurizer):
        net = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer, batch=3)
        q = net.forward(node, plc, glob)
        assert q.shape == (3, env.n_actions)

    def test_has_more_parameters_than_plain(self, env):
        plain = AttentionQNetwork(SMALL_QNET, seed=0)
        dueling = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        assert dueling.n_parameters() > plain.n_parameters()

    def test_parameter_count_independent_of_topology(self):
        from repro.config import paper_network
        from repro.net.topology import build_topology

        net = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        net.bind_topology(build_topology(tiny_network().topology))
        n_tiny = net.n_parameters()
        net.bind_topology(build_topology(paper_network().topology))
        assert net.n_parameters() == n_tiny

    def test_advantages_centered(self, env, featurizer):
        """Identical advantage across actions collapses to pure V."""
        net = DuelingAttentionQNetwork(
            QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                       head_hidden=16, final_tanh=False),
            seed=0,
        )
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer)
        q = net.forward(node, plc, glob).data
        # Q - V must be mean-zero per row by construction
        value = net.value_head(
            net._with_global(
                net._split_contexts(
                    net._contextualize(node, plc, glob)[0]
                )[3],
                net._contextualize(node, plc, glob)[1],
                2,
            )
        ).data.reshape(2, 1)
        assert np.allclose((q - value).mean(axis=1), 0.0, atol=1e-9)

    def test_gradients_reach_value_and_advantage_heads(self, env, featurizer):
        net = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer)
        q = net.forward(node, plc, glob)
        (q * q).sum().backward()
        assert net.value_head.linears[0].weight.grad is not None
        assert net.host_head.linears[0].weight.grad is not None

    def test_trains_with_standard_trainer(self, env, featurizer):
        net = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        trainer = DQNTrainer(env, net, featurizer, FAST_DQN)
        stats = trainer.train_episode(seed=0, max_steps=30)
        assert stats.steps == 30
        assert np.isfinite(stats.mean_loss)


class TestC51Projection:
    def test_identity_when_reward_zero_discount_one(self):
        c51 = C51Config(n_atoms=11, v_min=-5.0, v_max=5.0)
        probs = np.zeros((1, 11))
        probs[0, 3] = 1.0
        out = project_distribution(
            probs, np.zeros(1), np.ones(1), c51
        )
        assert np.allclose(out, probs)

    def test_terminal_collapses_to_reward_atom(self):
        c51 = C51Config(n_atoms=11, v_min=-5.0, v_max=5.0)
        probs = np.full((1, 11), 1.0 / 11)
        out = project_distribution(
            probs, np.array([2.0]), np.zeros(1), c51
        )
        # support spacing is 1.0; reward 2.0 sits exactly on atom 7
        assert out[0, 7] == pytest.approx(1.0)

    def test_mass_is_conserved(self):
        c51 = C51Config(n_atoms=21, v_min=-3.0, v_max=3.0)
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(21), size=16)
        out = project_distribution(
            probs, rng.normal(size=16), rng.uniform(0, 1, 16) ** 2, c51
        )
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()

    def test_rewards_beyond_support_clip_to_edges(self):
        c51 = C51Config(n_atoms=5, v_min=-1.0, v_max=1.0)
        probs = np.full((2, 5), 0.2)
        out = project_distribution(
            probs, np.array([100.0, -100.0]), np.zeros(2), c51
        )
        assert out[0, -1] == pytest.approx(1.0)
        assert out[1, 0] == pytest.approx(1.0)

    def test_mean_shifts_by_reward(self):
        """E[projected] ~ r + gamma E[next] inside the support."""
        c51 = C51Config(n_atoms=51, v_min=-10.0, v_max=10.0)
        probs = np.zeros((1, 51))
        probs[0, 25] = 1.0  # point mass at 0
        out = project_distribution(probs, np.array([1.5]), np.array([0.9]), c51)
        assert float((out @ c51.support)[0]) == pytest.approx(1.5, abs=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_projection_always_simplex(self, seed):
        rng = np.random.default_rng(seed)
        c51 = C51Config(n_atoms=31, v_min=-8.0, v_max=8.0)
        probs = rng.dirichlet(np.ones(31), size=4)
        out = project_distribution(
            probs, rng.normal(scale=5, size=4),
            rng.uniform(0, 1, size=4), c51,
        )
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out >= -1e-12).all()


class TestC51Config:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            C51Config(v_min=1.0, v_max=-1.0)

    def test_rejects_single_atom(self):
        with pytest.raises(ValueError):
            C51Config(n_atoms=1)

    def test_support_endpoints(self):
        c51 = C51Config(n_atoms=5, v_min=-2.0, v_max=2.0)
        assert c51.support[0] == -2.0
        assert c51.support[-1] == 2.0
        assert c51.delta_z == pytest.approx(1.0)


class TestDistributionalNetwork:
    def test_log_probs_shape_and_normalization(self, env, featurizer):
        c51 = C51Config(n_atoms=7, v_min=-3, v_max=3)
        net = DistributionalAttentionQNetwork(SMALL_QNET, seed=0, c51=c51)
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer)
        log_p = net.log_probs(node, plc, glob)
        assert log_p.shape == (2, env.n_actions, 7)
        assert np.allclose(np.exp(log_p.data).sum(axis=-1), 1.0)

    def test_forward_is_distribution_mean(self, env, featurizer):
        c51 = C51Config(n_atoms=7, v_min=-3, v_max=3)
        net = DistributionalAttentionQNetwork(SMALL_QNET, seed=0, c51=c51)
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer)
        q = net.forward(node, plc, glob).data
        probs = net.probs(node, plc, glob)
        assert np.allclose(q, (probs * c51.support).sum(axis=-1))
        assert (q >= c51.v_min - 1e-9).all() and (q <= c51.v_max + 1e-9).all()

    def test_clone_preserves_c51_config(self):
        c51 = C51Config(n_atoms=9, v_min=-1, v_max=1)
        net = DistributionalAttentionQNetwork(SMALL_QNET, seed=0, c51=c51)
        clone = net.clone(seed=5)
        assert clone.c51 == c51
        assert type(clone) is DistributionalAttentionQNetwork

    def test_trainer_rejects_scalar_network(self, env, featurizer):
        with pytest.raises(TypeError):
            C51Trainer(env, AttentionQNetwork(SMALL_QNET), featurizer, FAST_DQN)

    def test_c51_training_episode(self, env, featurizer):
        c51 = C51Config(n_atoms=11, v_min=-24, v_max=24)
        net = DistributionalAttentionQNetwork(SMALL_QNET, seed=0, c51=c51)
        trainer = C51Trainer(env, net, featurizer, FAST_DQN)
        stats = trainer.train_episode(seed=0, max_steps=30)
        assert stats.steps == 30
        assert np.isfinite(stats.mean_loss)
        assert stats.mean_loss > 0  # cross-entropy is positive


class TestRecurrentQNetwork:
    def test_forward_shape(self):
        net = RecurrentQNetwork(10, 13, DRQNConfig(window=4, encoder_hidden=8,
                                                   gru_hidden=8, head_hidden=8))
        out = net.forward(np.zeros((3, 4, 10)))
        assert out.shape == (3, 13)

    def test_rejects_flat_input(self):
        net = RecurrentQNetwork(10, 13, DRQNConfig())
        with pytest.raises(ValueError):
            net.forward(np.zeros((3, 10)))

    def test_q_values_bounded_by_scale(self):
        cfg = DRQNConfig(window=4, encoder_hidden=8, gru_hidden=8,
                         head_hidden=8, q_scale=2.0)
        net = RecurrentQNetwork(6, 5, cfg)
        out = net.forward(np.random.default_rng(0).normal(size=(2, 4, 6)) * 50)
        assert (np.abs(out.data) <= 2.0).all()

    def test_history_order_matters(self):
        net = RecurrentQNetwork(6, 5, DRQNConfig(window=4, encoder_hidden=8,
                                                 gru_hidden=8, head_hidden=8))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 6))
        assert not np.allclose(
            net.forward(x).data, net.forward(x[:, ::-1, :].copy()).data
        )


class TestWindowedTrainer:
    def _drqn(self, env, window=4):
        encoder = RawHistoryEncoder(env.topology, window=window)
        cfg = DRQNConfig(window=window, encoder_hidden=8, gru_hidden=8,
                         head_hidden=16)
        return RecurrentQNetwork(encoder.step_dim, env.n_actions, cfg)

    def test_drqn_episode_runs(self, env):
        trainer = WindowedDQNTrainer(env, self._drqn(env), FAST_DQN)
        stats = trainer.train_episode(seed=0, max_steps=25)
        assert stats.steps == 25
        assert np.isfinite(stats.mean_loss)

    def test_conv_episode_runs(self, env):
        from repro.rl.qnetwork import ConvNetConfig

        encoder = RawHistoryEncoder(env.topology, window=16)
        net = ConvQNetwork(
            encoder.step_dim, env.n_actions,
            ConvNetConfig(window=16, channels=(8, 8), mlp_hidden=16),
        )
        trainer = WindowedDQNTrainer(env, net, FAST_DQN)
        stats = trainer.train_episode(seed=0, max_steps=25)
        assert stats.steps == 25
        assert np.isfinite(stats.mean_loss)

    def test_rejects_step_dim_mismatch(self, env):
        net = RecurrentQNetwork(3, env.n_actions, DRQNConfig(window=4))
        with pytest.raises(ValueError):
            WindowedDQNTrainer(env, net, FAST_DQN)

    def test_rejects_action_count_mismatch(self, env):
        encoder = RawHistoryEncoder(env.topology, window=4)
        net = RecurrentQNetwork(encoder.step_dim, 3,
                                DRQNConfig(window=4))
        with pytest.raises(ValueError):
            WindowedDQNTrainer(env, net, FAST_DQN)

    def test_window_comes_from_network_config(self, env):
        trainer = WindowedDQNTrainer(env, self._drqn(env, window=7), FAST_DQN)
        assert trainer.encoder.window == 7


class TestUniformReplay:
    def test_interface_parity_with_per(self):
        buf = UniformReplay(10, seed=0)
        tr = Transition(0, 0, 1.0, 1, False, 0.99)
        for _ in range(5):
            buf.add(tr)
        indices, transitions, weights = buf.sample(3)
        assert len(transitions) == 3
        assert np.allclose(weights, 1.0)
        buf.update_priorities(indices, [1.0, 2.0, 3.0])  # no-op

    def test_wraps_at_capacity(self):
        buf = UniformReplay(3, seed=0)
        for i in range(7):
            buf.add(Transition(i, 0, 0.0, 0, False, 1.0))
        assert len(buf) == 3
        kept = {buf._data[i].state for i in range(3)}
        assert kept == {4, 5, 6}

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            UniformReplay(4).sample(1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            UniformReplay(0)


class TestAblationFlags:
    def test_vanilla_dqn_flags(self, env, featurizer):
        cfg = DQNConfig(batch_size=8, warmup=8, update_every=2,
                        double_dqn=False, prioritized=False, n_step=1)
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        trainer = DQNTrainer(env, net, featurizer, cfg)
        assert isinstance(trainer.replay, UniformReplay)
        stats = trainer.train_episode(seed=0, max_steps=25)
        assert np.isfinite(stats.mean_loss)

    def test_noisy_exploration_episode(self, env, featurizer):
        qcfg = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                          head_hidden=16, noisy_heads=True)
        cfg = DQNConfig(batch_size=8, warmup=8, update_every=2, noisy=True)
        net = AttentionQNetwork(qcfg, seed=0)
        trainer = DQNTrainer(env, net, featurizer, cfg)
        stats = trainer.train_episode(seed=0, max_steps=20)
        assert np.isfinite(stats.mean_loss)

    def test_noisy_heads_have_sigma_parameters(self):
        qcfg = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                          head_hidden=16, noisy_heads=True)
        net = AttentionQNetwork(qcfg, seed=0)
        names = [n for n, _ in net.named_parameters()]
        assert any("weight_sigma" in n for n in names)

    def test_noisy_network_resets_noise(self, env, featurizer):
        qcfg = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                          head_hidden=16, noisy_heads=True)
        net = AttentionQNetwork(qcfg, seed=0)
        net.bind_topology(env.topology)
        node, plc, glob = _features_batch(env, featurizer)
        q1 = net.forward(node, plc, glob).data.copy()
        net.reset_noise()
        q2 = net.forward(node, plc, glob).data.copy()
        assert not np.allclose(q1, q2)

    def test_noise_disable_makes_deterministic(self, env, featurizer):
        qcfg = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                          head_hidden=16, noisy_heads=True)
        net = AttentionQNetwork(qcfg, seed=0)
        net.bind_topology(env.topology)
        net.set_noise_enabled(False)
        node, plc, glob = _features_batch(env, featurizer)
        q1 = net.forward(node, plc, glob).data.copy()
        net.reset_noise()
        q2 = net.forward(node, plc, glob).data.copy()
        assert np.allclose(q1, q2)

    def test_target_net_clones_subclass(self, env, featurizer):
        net = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        trainer = DQNTrainer(env, net, featurizer, FAST_DQN)
        assert type(trainer.target) is DuelingAttentionQNetwork
