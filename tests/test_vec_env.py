"""Tests for the vectorized environment and batched evaluation."""

import numpy as np
import pytest

import repro
from repro.defenders import NoopPolicy, PlaybookPolicy
from repro.eval import evaluate_policy, evaluate_policy_vec
from repro.sim.vec_env import VectorEnv


def _tiny_vec(num_envs=3, seed=0, horizon=40, **kwargs):
    return repro.make_vec("inasim-tiny-v1", num_envs, seed=seed,
                          horizon=horizon, **kwargs)


def _rollout(venv, steps, seed):
    venv.reset(seed=seed)
    rewards, dones = [], []
    for _ in range(steps):
        step = venv.step(None)
        rewards.append(step.rewards)
        dones.append(step.dones)
    return np.stack(rewards), np.stack(dones)


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            VectorEnv([])

    def test_rejects_mixed_action_spaces(self):
        tiny = repro.make("inasim-tiny-v1")
        small = repro.make("inasim-small-v1")
        with pytest.raises(ValueError, match="action space"):
            VectorEnv([tiny, small])

    def test_delegating_properties(self):
        venv = _tiny_vec(2)
        assert venv.num_envs == len(venv) == 2
        assert venv.n_actions == venv.envs[0].n_actions
        assert venv.topology is venv.envs[0].topology
        assert venv.config.tmax == 40


class TestDeterminism:
    def test_same_seeds_same_batched_trajectories(self):
        r1, d1 = _rollout(_tiny_vec(3), steps=40, seed=5)
        r2, d2 = _rollout(_tiny_vec(3), steps=40, seed=5)
        np.testing.assert_array_equal(r1, r2)
        np.testing.assert_array_equal(d1, d2)

    def test_lanes_are_independent_episodes(self):
        venv = _tiny_vec(2, seed=0)
        venv.reset(seed=0)
        single = repro.make("inasim-tiny-v1", seed=0, horizon=40)
        # lane i is seeded seed + i: lane 1 must match a solo env run
        # with seed 1, stepped identically
        single.reset(seed=1)
        for _ in range(20):
            step = venv.step(None)
            _, r, _, _ = single.step(None)
            assert step.rewards[1] == r


class TestStepBatches:
    def test_shapes(self):
        venv = _tiny_vec(4)
        obs = venv.reset(seed=0)
        assert len(obs) == 4
        step = venv.step(None)
        assert step.rewards.shape == (4,)
        assert step.dones.shape == (4,)
        assert step.dones.dtype == bool
        assert len(step.observations) == len(step.infos) == 4

    def test_unpacks_like_gym(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        obs, rewards, dones, infos = venv.step(None)
        assert len(obs) == 2 and rewards.shape == (2,)

    def test_integer_action_batch(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        step = venv.step(np.array([1, 2]))
        launched = [info["launched"] for info in step.infos]
        assert launched[0] == [venv.action_list[1]]
        assert launched[1] == [venv.action_list[2]]

    def test_wrong_action_count_rejected(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        with pytest.raises(ValueError, match="expected 2 actions"):
            venv.step([None, None, None])

    def test_mask_skips_lanes(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        before = venv.envs[0].t
        step = venv.step(None, mask=[False, True])
        assert venv.envs[0].t == before  # lane 0 untouched
        assert venv.envs[1].t == before + 1
        assert step.dones[0] and step.rewards[0] == 0.0


class TestAutoReset:
    def test_auto_reset_on_done(self):
        venv = _tiny_vec(2, seed=0, horizon=10)
        venv.reset(seed=0)
        for _ in range(9):
            step = venv.step(None)
            assert not step.dones.any()
        step = venv.step(None)
        assert step.dones.all()
        for i in range(2):
            assert step.infos[i]["final_observation"].t == 10
            assert step.observations[i].t == 0  # fresh episode
        # the next episode advances from hour 0 again
        step = venv.step(None)
        assert not step.dones.any()
        assert all(obs.t == 1 for obs in step.observations)

    def test_auto_reset_seeds_are_fresh_and_deterministic(self):
        def returns_of(venv):
            venv.reset(seed=0)
            out = []
            for _ in range(25):
                out.append(venv.step(None).rewards.copy())
            return np.stack(out)

        a = returns_of(_tiny_vec(2, horizon=10))
        b = returns_of(_tiny_vec(2, horizon=10))
        np.testing.assert_array_equal(a, b)

    def test_auto_reset_disabled(self):
        venv = _tiny_vec(1, seed=0, horizon=10, auto_reset=False)
        venv.reset(seed=0)
        for _ in range(10):
            step = venv.step(None)
        assert step.dones[0]
        assert step.observations[0].t == 10  # terminal obs, no reset
        assert "final_observation" not in step.infos[0]


def _record_reset_seeds(venv):
    """Wrap each lane's env.reset so every seed it receives is logged."""
    log = [[] for _ in range(venv.num_envs)]

    def wrap(i, env):
        orig = env.reset

        def reset(seed=None):
            log[i].append(seed)
            return orig(seed=seed)

        env.reset = reset

    for i, env in enumerate(venv.envs):
        wrap(i, env)
    return log


class TestReseedSchedule:
    """Pin the ``seed + lane_offset + i + total_envs * episode`` schedule.

    Regression tests for the reseed bookkeeping: the initial reset,
    auto-resets, manual ``reset_env`` calls, and worker-local groups
    (``lane_offset``/``total_envs``) must all draw from one
    collision-free global schedule, with manual resets advancing the
    same counter as auto-resets so the stream stays uninterrupted.
    """

    BASE, N, HORIZON = 100, 3, 10

    def _run(self, steps, backend="sync"):
        venv = _tiny_vec(self.N, seed=self.BASE, horizon=self.HORIZON,
                         backend=backend)
        log = _record_reset_seeds(venv)
        venv.reset(seed=self.BASE)
        for _ in range(steps):
            venv.step(None)
        return venv, log

    @pytest.mark.parametrize("backend", ["sync", "batched"])
    def test_auto_reset_schedule_formula(self, backend):
        # 25 steps with horizon 10 => episodes 0, 1 and part of 2
        _, log = self._run(25, backend=backend)
        for i in range(self.N):
            assert log[i] == [self.BASE + i + self.N * k for k in range(3)]

    def test_reset_env_stays_on_schedule(self):
        # a manual mid-run reset_env must slot into the same stream the
        # auto-resets draw from, not fork a parallel one
        venv, log = self._run(5)
        venv.reset_env(1, seed=None)           # episode 1, manual
        for _ in range(25):                    # episodes 2, 3 via auto-reset
            venv.step(None)
        assert log[1][:4] == [self.BASE + 1 + self.N * k for k in range(4)]
        # untouched lanes are unaffected by lane 1's manual reset
        assert log[0][:2] == [self.BASE + 0, self.BASE + 0 + self.N]

    def test_reset_env_explicit_seed_still_advances_schedule(self):
        venv, log = self._run(0)
        venv.reset_env(0, seed=9999)           # consumes episode slot 1
        venv.reset_env(0, seed=None)           # so this draws slot 2
        assert log[0] == [self.BASE, 9999, self.BASE + 2 * self.N]

    def test_lane_offset_matches_global_layout(self):
        # a worker-local 2-lane group covering global lanes 1..2 of a
        # 4-lane layout must reproduce the monolithic env's seeds
        envs = [repro.make("inasim-tiny-v1", seed=0, horizon=self.HORIZON)
                for _ in range(2)]
        venv = VectorEnv(envs, base_seed=self.BASE, lane_offset=1,
                         total_envs=4)
        log = _record_reset_seeds(venv)
        venv.reset(seed=self.BASE)
        for _ in range(12):
            venv.step(None)
        for i in range(2):
            assert log[i] == [self.BASE + 1 + i + 4 * k for k in range(2)]

    def test_replace_env_restarts_lane_schedule(self):
        venv, log = self._run(12)              # lane episode counts now 1
        venv.replace_env(0, repro.make("inasim-tiny-v1", seed=0,
                                       horizon=self.HORIZON))
        log[0] = _record_reset_seeds(venv)[0]  # re-wrap the new lane env
        venv.reset_env(0, seed=None)
        # fresh lane: its next manual reset is episode 1 of a restarted
        # schedule, exactly as on a newly constructed vector env
        assert log[0] == [self.BASE + 0 + self.N * 1]

    def test_restore_reset_does_not_advance_schedule(self):
        venv, log = self._run(0)
        venv.restore_reset(0, seed=4321)       # recovery replay: verbatim
        venv.reset_env(0, seed=None)           # schedule untouched above
        assert log[0] == [self.BASE, 4321, self.BASE + self.N]


class TestActionMasks:
    def test_shape_and_noop_valid(self):
        venv = _tiny_vec(3)
        venv.reset(seed=0)
        masks = venv.action_masks()
        assert masks.shape == (3, venv.n_actions)
        assert masks.all()  # nothing busy at reset

    def test_busy_target_masked(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        venv.step(np.array([1, 0]))  # env 0 launches a real action
        masks = venv.action_masks()
        env_mask = venv.envs[0].action_mask()
        np.testing.assert_array_equal(masks[0], env_mask)
        assert not masks[0].all()

    def test_matches_rl_stack_mask(self):
        from repro.rl.dqn import valid_action_mask

        venv = _tiny_vec(1)
        obs = venv.reset(seed=0)
        venv.step(np.array([2]))
        env = venv.envs[0]
        obs = venv._last_obs[0]
        np.testing.assert_array_equal(
            env.action_mask(), valid_action_mask(env.action_list, obs)
        )

    def test_sample_actions_are_valid(self):
        venv = _tiny_vec(2)
        venv.reset(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(5):
            actions = venv.sample_actions(rng)
            masks = venv.action_masks()
            assert all(masks[i, a] for i, a in enumerate(actions))
            venv.step(actions)


class TestEvaluatePolicyVec:
    @pytest.mark.parametrize("num_envs", [1, 2, 3])
    def test_matches_single_env_playbook(self, num_envs):
        env = repro.make("inasim-tiny-v1", seed=0, horizon=40)
        agg_s, eps_s = evaluate_policy(env, PlaybookPolicy(), 4, seed=0)
        venv = _tiny_vec(num_envs, seed=0)
        agg_v, eps_v = evaluate_policy_vec(venv, PlaybookPolicy(), 4, seed=0)
        assert eps_s == eps_v
        assert agg_s.mean("discounted_return") == agg_v.mean("discounted_return")

    def test_matches_single_env_with_max_steps(self):
        env = repro.make("inasim-tiny-v1", seed=0, horizon=40)
        _, eps_s = evaluate_policy(env, NoopPolicy(), 3, seed=7, max_steps=15)
        venv = _tiny_vec(2, seed=0)
        _, eps_v = evaluate_policy_vec(venv, NoopPolicy(), 3, seed=7,
                                       max_steps=15)
        assert eps_s == eps_v

    def test_policy_factory_accepted(self):
        venv = _tiny_vec(2, seed=0)
        agg, eps = evaluate_policy_vec(venv, PlaybookPolicy, 2, seed=0,
                                       max_steps=10)
        assert len(eps) == 2

    def test_restores_auto_reset_flag(self):
        venv = _tiny_vec(2, seed=0)
        assert venv.auto_reset
        evaluate_policy_vec(venv, NoopPolicy(), 2, seed=0, max_steps=5)
        assert venv.auto_reset

    def test_rejects_non_policy(self):
        venv = _tiny_vec(1, seed=0)
        with pytest.raises(TypeError):
            evaluate_policy_vec(venv, object(), 1)


class TestVecDQNTraining:
    def test_collects_from_all_lanes(self, tiny_tables):
        from repro.rl import AttentionQNetwork, QNetConfig
        from repro.rl.dqn import DQNConfig, DQNTrainer
        from repro.rl.features import ACSOFeaturizer

        venv = _tiny_vec(2, seed=0, horizon=30)
        qnet = AttentionQNetwork(QNetConfig(), seed=0)
        trainer = DQNTrainer(
            venv, qnet, ACSOFeaturizer(venv.topology, tiny_tables),
            DQNConfig(warmup=16, batch_size=8, update_every=4, seed=0),
        )
        history = trainer.train(episodes=3, seed=0, max_steps=25)
        assert [s.episode for s in history] == [0, 1, 2]
        assert all(s.steps == 25 for s in history)
        assert trainer.total_steps == 75
        assert all(np.isfinite(s.env_return) for s in history)
        assert any(s.mean_loss != 0.0 for s in history)
