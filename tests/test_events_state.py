"""Tests for the event queue and the dynamic network state."""

import pytest

from repro.config import tiny_network
from repro.net import Condition, build_topology
from repro.net.topology import L2_OPS, L2_QUAR
from repro.sim.events import EventQueue
from repro.sim.state import NetworkState


@pytest.fixture()
def state():
    return NetworkState(build_topology(tiny_network().topology))


class TestEventQueue:
    def test_pop_due_returns_in_time_order(self):
        q = EventQueue()
        q.push(5, "c")
        q.push(1, "a")
        q.push(3, "b")
        assert q.pop_due(5) == ["a", "b", "c"]

    def test_pop_due_leaves_future_events(self):
        q = EventQueue()
        q.push(1, "now")
        q.push(10, "later")
        assert q.pop_due(5) == ["now"]
        assert len(q) == 1
        assert q.peek_time() == 10

    def test_same_time_fifo(self):
        q = EventQueue()
        for name in "abc":
            q.push(2, name)
        assert q.pop_due(2) == ["a", "b", "c"]

    def test_empty_pop(self):
        q = EventQueue()
        assert q.pop_due(100) == []
        assert q.peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1, "x")
        q.clear()
        assert len(q) == 0


class TestConditionManipulation:
    def test_set_requires_prereq(self, state):
        assert not state.set_condition(0, Condition.COMPROMISED)
        assert state.set_condition(0, Condition.SCANNED)
        assert state.set_condition(0, Condition.COMPROMISED)
        assert state.is_compromised(0)

    def test_full_ladder(self, state):
        for cond in (Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN,
                     Condition.CRED_PERSIST, Condition.CLEANED,
                     Condition.REBOOT_PERSIST):
            assert state.set_condition(0, cond)
        assert state.conditions[0].all()

    def test_cred_persist_needs_admin(self, state):
        state.set_condition(0, Condition.SCANNED)
        state.set_condition(0, Condition.COMPROMISED)
        assert not state.set_condition(0, Condition.CRED_PERSIST)

    def test_clear_node(self, state):
        state.set_condition(0, Condition.SCANNED)
        state.set_condition(0, Condition.COMPROMISED)
        state.clear_node(0)
        assert not state.conditions[0].any()


class TestQuarantine:
    def test_move_and_flag(self, state):
        assert not state.is_quarantined(0)
        state.move_node(0, L2_QUAR)
        assert state.is_quarantined(0)
        state.move_node(0, L2_OPS)
        assert not state.is_quarantined(0)

    def test_unknown_vlan_rejected(self, state):
        with pytest.raises(KeyError):
            state.move_node(0, "vlan-nope")


class TestBusyBookkeeping:
    def test_node_busy_until(self, state):
        state.node_busy_until[0] = 5
        state.t = 4
        assert state.node_busy(0)
        state.t = 5
        assert not state.node_busy(0)

    def test_plc_busy(self, state):
        state.plc_busy_until[1] = 3
        state.t = 0
        assert state.plc_busy(1)
        assert not state.plc_busy(0)


class TestAggregates:
    def test_compromise_counts_split_by_type(self, state):
        ws = 0  # workstation id in tiny topology
        server = next(
            n.node_id for n in state.topology.nodes if n.is_server
        )
        for node in (ws, server):
            state.set_condition(node, Condition.SCANNED)
            state.set_condition(node, Condition.COMPROMISED)
        assert state.n_compromised() == 2
        assert state.n_workstations_compromised() == 1
        assert state.n_servers_compromised() == 1

    def test_plc_counts(self, state):
        state.plc_disrupted[0] = True
        state.plc_disrupted[1] = True
        state.plc_destroyed[1] = True
        assert state.n_plcs_disrupted() == 1  # destroyed subsumes disrupted
        assert state.n_plcs_destroyed() == 1
        assert state.n_plcs_offline() == 2

    def test_snapshot_is_independent_copy(self, state):
        snap = state.snapshot()
        state.set_condition(0, Condition.SCANNED)
        assert not snap["conditions"][0, Condition.SCANNED]

    def test_compromised_mask_copy(self, state):
        mask = state.compromised_mask()
        mask[:] = True
        assert state.n_compromised() == 0
