#!/usr/bin/env python
"""Regenerate the golden-trajectory fixtures.

Each built-in scenario gets a JSON digest of a seeded 32-step rollout
under the deterministic playbook defender: per-step rewards, done
flags, alert counts, a short hash of each step's action-validity mask,
and a hash of the full observation (alert stream, scan results, PLC
status, busy/quarantine vectors). The replay test
(``tests/test_golden_trajectories.py``) compares fresh rollouts against
these digests, so any engine change that shifts the dynamics — reward
math, attacker FSM, IDS draws, mitigation effects, RNG scheduling —
fails loudly instead of silently redefining what "the paper scenario"
means.

An engine pass that *intentionally* changes the trajectory
distribution (e.g. a reseeding-schedule change) must regenerate the
fixtures and say so in its PR:

    PYTHONPATH=src python tests/golden/regenerate.py
"""

from __future__ import annotations

import hashlib
import json
import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent
SEED = 20260401
STEPS = 32


def mask_digest(mask) -> str:
    """Short stable hash of a boolean action-validity mask."""
    return hashlib.sha256(mask.astype("uint8").tobytes()).hexdigest()[:16]


def observation_digest(obs) -> str:
    """Short stable hash of everything the defender observed this step."""
    h = hashlib.sha256()
    h.update(str(obs.t).encode())
    for alert in obs.alerts:
        h.update(
            f"A{alert.t},{alert.severity},{alert.node_id},{alert.device_id}"
            .encode()
        )
    for scan in obs.scan_results:
        h.update(f"S{scan.t},{scan.node_id},{int(scan.detected)}".encode())
    for vector in (obs.plc_disrupted, obs.plc_destroyed, obs.node_busy,
                   obs.plc_busy, obs.quarantined):
        h.update(vector.astype("uint8").tobytes())
    return h.hexdigest()[:16]


def rollout_digest(scenario_id: str, seed: int = SEED,
                   steps: int = STEPS) -> dict:
    """Seeded playbook-policy rollout digest for one scenario."""
    import repro
    from repro.defenders import PlaybookPolicy

    env = repro.make(scenario_id)
    obs = env.reset(seed=seed)
    policy = PlaybookPolicy()  # deterministic, alert-reactive
    policy.reset(env)
    rewards, dones, alerts, masks, observations = [], [], [], [], []
    for _ in range(steps):
        masks.append(mask_digest(env.action_mask()))
        obs, reward, done, _ = env.step(policy.act(obs))
        rewards.append(reward)
        dones.append(bool(done))
        alerts.append(len(obs.alerts))
        observations.append(observation_digest(obs))
        if done:
            break
    return {
        "scenario_id": scenario_id,
        "seed": seed,
        "steps": len(rewards),
        "policy": "playbook",
        "rewards": rewards,
        "dones": dones,
        "n_alerts": alerts,
        "action_mask_sha256_16": masks,
        "observation_sha256_16": observations,
    }


def fixture_path(scenario_id: str) -> pathlib.Path:
    return GOLDEN_DIR / (scenario_id.replace("/", "__") + ".json")


def main() -> None:
    import repro

    for spec in repro.scenarios.BUILTIN_SCENARIOS:
        digest = rollout_digest(spec.scenario_id)
        path = fixture_path(spec.scenario_id)
        with open(path, "w") as handle:
            json.dump(digest, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path.name}: {digest['steps']} steps")


if __name__ == "__main__":
    main()
