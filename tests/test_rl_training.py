"""Tests for the DQN trainer, pretraining, and the ACSO policy."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.defenders import DBNExpertPolicy
from repro.defenders.acso import ACSOPolicy
from repro.nn import save_state
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    DQNConfig,
    DQNTrainer,
    QNetConfig,
    collect_demonstrations,
    pretrain,
)
from repro.rl.dqn import valid_action_mask
from repro.rl.pretrain import PretrainConfig
from repro.sim.orchestrator import DefenderActionType

_T = DefenderActionType


@pytest.fixture()
def setup(tiny_tables):
    cfg = tiny_network(tmax=60)
    env = repro.make_env(cfg, seed=0)
    qnet = AttentionQNetwork(QNetConfig(), seed=1)
    feat = ACSOFeaturizer(env.topology, tiny_tables)
    return env, qnet, feat


class TestValidActionMask:
    def test_masks_busy_targets(self, setup):
        env, qnet, _ = setup
        qnet.bind_topology(env.topology)
        obs = env.reset(seed=0)
        obs.node_busy[0] = True
        obs.plc_busy[1] = True
        mask = valid_action_mask(qnet.action_list, obs)
        for i, action in enumerate(qnet.action_list):
            if action.is_noop:
                assert mask[i]
            elif action.atype in (_T.RESET_PLC, _T.REPLACE_PLC):
                assert mask[i] == (action.target != 1)
            else:
                assert mask[i] == (action.target != 0)

    def test_noop_always_valid(self, setup):
        env, qnet, _ = setup
        qnet.bind_topology(env.topology)
        obs = env.reset(seed=0)
        obs.node_busy[:] = True
        obs.plc_busy[:] = True
        mask = valid_action_mask(qnet.action_list, obs)
        assert mask[0]
        assert mask.sum() == 1


class TestDQNTrainer:
    def test_select_action_respects_mask(self, setup):
        env, qnet, feat = setup
        trainer = DQNTrainer(env, qnet, feat, DQNConfig(seed=0))
        obs = env.reset(seed=0)
        feat.reset()
        features = feat.update(obs)
        obs.node_busy[:] = True
        obs.plc_busy[:] = True
        for eps in (0.0, 1.0):
            assert trainer.select_action(features, obs, eps) == 0

    def test_training_runs_and_records(self, setup):
        env, qnet, feat = setup
        cfg = DQNConfig(warmup=32, batch_size=16, update_every=8,
                        target_update=50, seed=0)
        trainer = DQNTrainer(env, qnet, feat, cfg)
        history = trainer.train(episodes=1, seed=5, max_steps=60)
        assert len(history) == 1
        stats = history[0]
        assert stats.steps == 60
        assert np.isfinite(stats.env_return)
        assert np.isfinite(stats.mean_loss)
        assert len(trainer.replay) > 0

    def test_update_returns_finite_loss_and_syncs_target(self, setup):
        env, qnet, feat = setup
        cfg = DQNConfig(warmup=16, batch_size=8, update_every=4,
                        target_update=20, seed=0)
        trainer = DQNTrainer(env, qnet, feat, cfg)
        trainer.train(episodes=1, seed=2, max_steps=40)
        loss = trainer.update()
        assert np.isfinite(loss)
        # after a manual sync the target matches the online net
        trainer.target.copy_from(trainer.qnet)
        for (_, a), (_, b) in zip(
            trainer.qnet.named_parameters(), trainer.target.named_parameters()
        ):
            assert np.allclose(a.data, b.data)

    def test_shaping_weight_defaults_to_value_scale(self, setup):
        env, qnet, feat = setup
        trainer = DQNTrainer(env, qnet, feat, DQNConfig(seed=0))
        gamma = env.config.reward.gamma
        assert trainer.shaping_weight == pytest.approx(1.0 / (1.0 - gamma))
        trainer2 = DQNTrainer(env, AttentionQNetwork(QNetConfig(), seed=2),
                              feat, DQNConfig(seed=0, shaping_weight=3.0))
        assert trainer2.shaping_weight == 3.0


class TestPretraining:
    def test_demonstrations_collected(self, setup, tiny_tables):
        env, qnet, feat = setup
        expert = DBNExpertPolicy(tiny_tables, max_actions=1, seed=0)
        demos = collect_demonstrations(env, expert, feat, qnet, episodes=1,
                                       seed=0, max_steps=50)
        assert len(demos) == 50
        assert all(d.expert for d in demos)
        assert all(0 <= d.action < qnet.n_actions for d in demos)

    @pytest.mark.slow
    def test_pretrain_teaches_expert_actions(self, setup, tiny_tables):
        """After margin-heavy pretraining, the greedy action matches the
        demonstrated action on a majority of demo states."""
        env, qnet, feat = setup
        expert = DBNExpertPolicy(tiny_tables, max_actions=1, seed=0)
        demos = collect_demonstrations(env, expert, feat, qnet, episodes=2,
                                       seed=0, max_steps=60)
        cfg = PretrainConfig(iterations=300, lr=3e-3, margin_weight=4.0, seed=0)
        losses = pretrain(qnet, demos, cfg)
        assert len(losses) == 300
        from repro.rl import stack_features
        from repro.nn import no_grad

        states = stack_features([d.state for d in demos])
        with no_grad():
            greedy = qnet.forward(*states).data.argmax(axis=1)
        actions = np.array([d.action for d in demos])
        agreement = (greedy == actions).mean()
        assert agreement > 0.5

    def test_pretrain_requires_demos(self, setup):
        _, qnet, _ = setup
        with pytest.raises(ValueError):
            pretrain(qnet, [], PretrainConfig(iterations=1))


class TestACSOPolicy:
    def test_act_returns_valid_actions(self, setup, tiny_tables):
        env, qnet, _ = setup
        policy = ACSOPolicy(qnet, tiny_tables)
        obs = env.reset(seed=0)
        policy.reset(env)
        for _ in range(10):
            actions = policy.act(obs)
            assert len(actions) <= 1
            obs, _, _, _ = env.step(actions)

    def test_from_file_roundtrip(self, setup, tiny_tables, tmp_path):
        env, qnet, _ = setup
        qnet.bind_topology(env.topology)
        path = tmp_path / "acso.npz"
        save_state(qnet, path)
        policy = ACSOPolicy.from_file(path, tiny_tables, QNetConfig())
        obs = env.reset(seed=0)
        policy.reset(env)
        reference = ACSOPolicy(qnet, tiny_tables)
        reference.reset(env)
        assert policy.act(obs) == reference.act(obs)


class TestSetEnv:
    def test_rebinds_to_vector_env_and_trains(self, setup):
        """The self-play defender oracle path: one trainer carries its
        replay/optimizer state across environment rebinds."""
        env, qnet, feat = setup
        trainer = DQNTrainer(env, qnet, feat,
                             DQNConfig(batch_size=8, warmup=8,
                                       update_every=4, buffer_size=200))
        trainer.train_episode(seed=0, max_steps=5)
        steps_before = trainer.total_steps
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0)
        trainer.set_env(venv)
        assert trainer.vec
        trainer.train(2, seed=1, max_steps=5)
        assert trainer.total_steps == steps_before + 10
        # and back to a single env
        trainer.set_env(env)
        assert not trainer.vec
        trainer.train_episode(seed=2, max_steps=5)

    def test_rejects_mismatched_action_space(self, setup):
        env, qnet, feat = setup
        trainer = DQNTrainer(env, qnet, feat, DQNConfig())
        other = repro.make("inasim-small-v1")
        with pytest.raises(ValueError, match="actions"):
            trainer.set_env(other)

    def test_rejects_mismatched_gamma(self, setup):
        import dataclasses

        env, qnet, feat = setup
        trainer = DQNTrainer(env, qnet, feat, DQNConfig())
        cfg = tiny_network(tmax=30)
        cfg = dataclasses.replace(
            cfg, reward=dataclasses.replace(cfg.reward, gamma=0.9))
        other = repro.make_env(cfg, seed=0)
        with pytest.raises(ValueError, match="gamma"):
            trainer.set_env(other)
