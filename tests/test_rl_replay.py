"""Tests for the replay machinery: sum tree, PER, n-step assembly."""

import numpy as np
import pytest

from repro.rl.replay import NStepAssembler, PrioritizedReplay, SumTree, Transition


def _tr(tag: int) -> Transition:
    return Transition(state=tag, action=tag, reward=float(tag),
                      next_state=tag + 1, done=False, discount=0.99)


class TestSumTree:
    def test_total_tracks_sets(self):
        tree = SumTree(8)
        tree.set(0, 1.0)
        tree.set(3, 2.0)
        assert tree.total == pytest.approx(3.0)
        tree.set(0, 0.5)
        assert tree.total == pytest.approx(2.5)

    def test_get(self):
        tree = SumTree(4)
        tree.set(2, 7.0)
        assert tree.get(2) == 7.0
        assert tree.get(0) == 0.0

    def test_find_respects_mass(self):
        tree = SumTree(4)
        tree.set(0, 1.0)
        tree.set(1, 3.0)
        assert tree.find(0.5) == 0
        assert tree.find(1.5) == 1
        assert tree.find(3.9) == 1

    def test_find_statistics(self):
        tree = SumTree(4)
        weights = [1.0, 2.0, 3.0, 4.0]
        for i, w in enumerate(weights):
            tree.set(i, w)
        rng = np.random.default_rng(0)
        counts = np.zeros(4)
        for _ in range(4000):
            counts[tree.find(rng.random() * tree.total)] += 1
        assert np.allclose(counts / 4000, np.array(weights) / 10, atol=0.03)

    def test_negative_priority_rejected(self):
        with pytest.raises(ValueError):
            SumTree(4).set(0, -1.0)

    def test_non_power_of_two_capacity(self):
        tree = SumTree(5)
        for i in range(5):
            tree.set(i, 1.0)
        assert tree.total == pytest.approx(5.0)


class TestPrioritizedReplay:
    def test_add_and_len(self):
        buf = PrioritizedReplay(10)
        for i in range(4):
            buf.add(_tr(i))
        assert len(buf) == 4

    def test_wraps_at_capacity(self):
        buf = PrioritizedReplay(3)
        for i in range(5):
            buf.add(_tr(i))
        assert len(buf) == 3

    def test_sample_returns_stored_transitions(self):
        buf = PrioritizedReplay(16, seed=0)
        for i in range(10):
            buf.add(_tr(i))
        idx, transitions, weights = buf.sample(4, beta=0.5)
        assert len(idx) == len(transitions) == len(weights) == 4
        assert all(isinstance(t, Transition) for t in transitions)
        assert (weights <= 1.0 + 1e-12).all() and (weights > 0).all()

    def test_high_priority_sampled_more(self):
        buf = PrioritizedReplay(8, alpha=1.0, seed=0)
        for i in range(8):
            buf.add(_tr(i), priority=0.01)
        special = buf.add(_tr(99), priority=0.0)
        buf.update_priorities([special], [100.0])
        counts = 0
        for _ in range(200):
            idx, _, _ = buf.sample(4, beta=0.4)
            counts += int((idx == special).sum())
        assert counts > 300  # ~all samples should hit the huge priority

    def test_sample_empty_raises(self):
        with pytest.raises(ValueError):
            PrioritizedReplay(4).sample(1)

    def test_update_priorities_uses_abs(self):
        buf = PrioritizedReplay(4, seed=0)
        i = buf.add(_tr(0))
        buf.update_priorities([i], [-5.0])
        assert buf.tree.get(i) > 0


class TestNStepAssembler:
    def test_emits_after_n_pushes(self):
        asm = NStepAssembler(3, gamma=0.5)
        assert asm.push("s0", 0, 1.0, "s1", False) == []
        assert asm.push("s1", 1, 1.0, "s2", False) == []
        out = asm.push("s2", 2, 1.0, "s3", False)
        assert len(out) == 1
        tr = out[0]
        assert tr.state == "s0" and tr.action == 0
        assert tr.reward == pytest.approx(1 + 0.5 + 0.25)
        assert tr.next_state == "s3"
        assert tr.discount == pytest.approx(0.5 ** 3)
        assert not tr.done

    def test_done_flushes_all(self):
        asm = NStepAssembler(4, gamma=1.0)
        asm.push("s0", 0, 1.0, "s1", False)
        asm.push("s1", 1, 2.0, "s2", False)
        out = asm.push("s2", 2, 4.0, "s3", True)
        assert len(out) == 3
        assert [tr.reward for tr in out] == [7.0, 6.0, 4.0]
        assert all(tr.done for tr in out)
        assert all(tr.next_state == "s3" for tr in out)

    def test_sliding_window(self):
        asm = NStepAssembler(2, gamma=1.0)
        asm.push("s0", 0, 1.0, "s1", False)
        first = asm.push("s1", 1, 10.0, "s2", False)[0]
        second = asm.push("s2", 2, 100.0, "s3", False)[0]
        assert first.state == "s0" and first.reward == 11.0
        assert second.state == "s1" and second.reward == 110.0

    def test_reset_clears_pending(self):
        asm = NStepAssembler(3, gamma=1.0)
        asm.push("s0", 0, 1.0, "s1", False)
        asm.reset()
        assert asm.push("s1", 1, 1.0, "s2", False) == []

    def test_n1_is_plain_transition(self):
        asm = NStepAssembler(1, gamma=0.9)
        out = asm.push("s0", 3, 2.0, "s1", False)
        assert out[0].reward == 2.0 and out[0].discount == pytest.approx(0.9)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            NStepAssembler(0, 0.9)
