"""Fixture: one justified suppression, one malformed, one live finding.

The test asserts on the exact line numbers below -- keep edits additive
at the end of the file.
"""

import random


def justified():
    # repro: allow[rng-global-state] -- fixture demonstrates a justified mute
    return random.random()  # line 12: suppressed


def malformed():
    return random.random()  # repro: allow[rng-global-state]  (line 16)


def live():
    return random.random()  # line 20: must still be reported
