"""Deliberately-bad fixture: banned imports in a transport module."""

import pickle  # line 3: forbidden-import (pickle in transport)

from repro.serve.store import RunStore  # line 5: forbidden-import (layering)


def encode(payload):
    return pickle.dumps(payload)


def lookup(store: RunStore, key):
    return store.get(key)
