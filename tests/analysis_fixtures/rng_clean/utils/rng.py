"""Sanctioned factory module: the one place default_rng may appear."""

import numpy as np


def ensure_rng(seed=None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
