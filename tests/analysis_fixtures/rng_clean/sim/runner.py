"""Clean fixture: RNG flows in as a Generator parameter."""

import numpy as np


def draw(rng: np.random.Generator) -> float:
    return float(rng.normal())


def pick(rng: np.random.Generator, items):
    return items[int(rng.integers(len(items)))]
