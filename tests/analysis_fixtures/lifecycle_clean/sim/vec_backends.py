"""Clean fixture: every construction reaches a release path."""

import multiprocessing as mp
import weakref
from multiprocessing import shared_memory


def with_block():
    with shared_memory.SharedMemory(create=True, size=16) as shm:
        return bytes(shm.buf[:4])


def explicit_release():
    shm = shared_memory.SharedMemory(create=True, size=16)
    try:
        return shm.name
    finally:
        shm.close()
        shm.unlink()


def ownership_transfer(registry):
    shm = shared_memory.SharedMemory(create=True, size=16)
    registry.adopt(shm)


def finalizer_release(owner):
    shm = shared_memory.SharedMemory(create=True, size=16)
    weakref.finalize(owner, shm.close)


class CleanPool:
    def __init__(self):
        self.proc = mp.Process(target=print)
        self.conn, child = mp.Pipe(duplex=True)
        child.close()

    def close(self):
        self.proc.terminate()
        self.proc.join()
        self.conn.close()
