"""Deliberately-bad fixture: leaked OS resources.

The test asserts on the exact line numbers below -- keep edits additive
at the end of the file.
"""

import multiprocessing as mp
from multiprocessing import shared_memory


def leaky_local():
    shm = shared_memory.SharedMemory(create=True, size=16)  # line 12
    size = shm.size
    return size


def leaky_bare():
    shared_memory.SharedMemory(create=True, size=16)  # line 18


class LeakyPool:
    def __init__(self):
        self.proc = mp.Process(target=print)  # line 23: never released

    def start(self):
        self.proc.start()
