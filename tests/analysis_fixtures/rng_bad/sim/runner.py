"""Deliberately-bad fixture: every RNG-discipline violation in one file.

The test asserts on the exact line numbers below -- keep edits additive
at the end of the file.
"""

import os
import random
import time
import uuid

import numpy as np
from numpy.random import normal


def global_numpy_draw():
    return np.random.normal()  # line 17: rng-global-state


def global_stdlib_draw():
    return random.random()  # line 21: rng-global-state


def wall_clock_seed():
    return time.time()  # line 25: rng-wall-clock


def uuid_entropy():
    return uuid.uuid4()  # line 29: rng-wall-clock


def os_entropy():
    return os.urandom(8)  # line 33: rng-wall-clock


def local_factory(seed):
    return np.random.default_rng(seed)  # line 37: rng-unsanctioned-factory


def imported_global_draw():
    return normal()  # via `from numpy.random import normal` (line 13)
