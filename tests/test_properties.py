"""Property-based tests (hypothesis) on core data structures and
invariants: sum tree consistency, event-queue ordering, belief
normalization, shaping telescoping, canonical-state mapping, and
autograd broadcasting."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbn.states import canonical_states, mu_bucket
from repro.net.nodes import CONDITION_PREREQS, Condition
from repro.nn import Tensor
from repro.rl.replay import NStepAssembler, SumTree
from repro.rl.shaping import PotentialShaper
from repro.sim.events import EventQueue
from repro.utils.stats import discounted_return


@st.composite
def priority_updates(draw):
    size = draw(st.integers(2, 32))
    n_ops = draw(st.integers(1, 40))
    ops = [
        (draw(st.integers(0, size - 1)),
         draw(st.floats(0, 100, allow_nan=False, allow_infinity=False)))
        for _ in range(n_ops)
    ]
    return size, ops


class TestSumTreeProperties:
    @given(priority_updates())
    @settings(max_examples=60, deadline=None)
    def test_total_equals_sum_of_leaves(self, case):
        size, ops = case
        tree = SumTree(size)
        reference = np.zeros(size)
        for index, priority in ops:
            tree.set(index, priority)
            reference[index] = priority
        assert np.isclose(tree.total, reference.sum())
        for i in range(size):
            assert np.isclose(tree.get(i), reference[i])

    @given(priority_updates(), st.floats(0, 1, exclude_max=True))
    @settings(max_examples=60, deadline=None)
    def test_find_lands_on_positive_mass(self, case, frac):
        size, ops = case
        tree = SumTree(size)
        for index, priority in ops:
            tree.set(index, priority)
        if tree.total <= 0:
            return
        found = tree.find(frac * tree.total)
        assert 0 <= found < size
        assert tree.get(found) > 0 or tree.total == 0


class TestEventQueueProperties:
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_pop_order_is_nondecreasing(self, times):
        q = EventQueue()
        for i, t in enumerate(times):
            q.push(t, (t, i))
        popped = q.pop_due(200)
        assert [p[0] for p in popped] == sorted(times)
        # FIFO within equal times
        by_time = {}
        for t, i in popped:
            by_time.setdefault(t, []).append(i)
        for seq in by_time.values():
            assert seq == sorted(seq)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30),
           st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_pop_due_partitions_by_time(self, times, now):
        q = EventQueue()
        for t in times:
            q.push(t, t)
        popped = q.pop_due(now)
        assert all(t <= now for t in popped)
        assert len(popped) + len(q) == len(times)


class TestCanonicalStateProperties:
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_mapping_total_and_monotone(self, bitmasks):
        """Every prerequisite-consistent condition row maps to a state,
        and compromised rows never map below COMP."""
        rows = np.zeros((len(bitmasks), 6), dtype=bool)
        for i, bits in enumerate(bitmasks):
            for c in Condition:
                rows[i, c] = bool(bits >> int(c) & 1)
            # enforce Table 1 prerequisites bottom-up
            for cond in Condition:
                prereq = CONDITION_PREREQS[cond]
                if prereq is not None and not rows[i, prereq]:
                    rows[i, cond] = False
        states = canonical_states(rows)
        assert ((0 <= states) & (states <= 8)).all()
        compromised = rows[:, Condition.COMPROMISED]
        assert (states[compromised] >= 2).all()
        assert (states[~compromised] <= 1).all()

    @given(st.integers(0, 1000))
    def test_mu_bucket_monotone(self, n):
        assert mu_bucket(n) <= mu_bucket(n + 1)
        assert 0 <= mu_bucket(n) <= 3


class TestShapingProperties:
    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 5)),
                    min_size=2, max_size=30),
           st.floats(0.5, 0.9999))
    @settings(max_examples=60, deadline=None)
    def test_telescoping(self, counts, gamma):
        shaper = PotentialShaper(gamma)
        phis = [shaper.potential(w, s) for w, s in counts]
        total = 0.0
        for t in range(len(phis) - 1):
            done = t == len(phis) - 2
            total += gamma ** t * shaper.shape(phis[t], phis[t + 1], done=done)
        assert np.isclose(total, -phis[0])


class TestNStepProperties:
    @given(st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=20),
           st.integers(1, 8), st.floats(0.5, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_flushed_rewards_match_discounted_suffix(self, rewards, n, gamma):
        asm = NStepAssembler(n, gamma)
        emitted = []
        for i, r in enumerate(rewards):
            done = i == len(rewards) - 1
            emitted.extend(asm.push(i, 0, r, i + 1, done))
        assert len(emitted) == len(rewards)
        # transition starting at index i carries the discounted sum of
        # the next min(n, T-i) rewards
        for i, tr in enumerate(emitted):
            window = rewards[i:i + n]
            assert np.isclose(tr.reward, discounted_return(window, gamma))


class TestAutogradProperties:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_broadcast_add_grad_shapes(self, a, b, c):
        x = Tensor(np.ones((a, 1, c)), requires_grad=True)
        y = Tensor(np.ones((b, c)), requires_grad=True)
        ((x + y) ** 2).sum().backward()
        assert x.grad.shape == x.shape
        assert y.grad.shape == y.shape

    @given(st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_softmax_grad_sums_to_zero(self, n):
        """d(softmax)/dx satisfies sum-to-zero rows: gradient of any
        single output wrt inputs sums to ~0."""
        x = Tensor(np.linspace(-1, 1, n), requires_grad=True)
        y = x.softmax(axis=-1)
        y[0].sum().backward()
        assert np.isclose(x.grad.sum(), 0.0, atol=1e-10)
