"""Tests for the evaluation harness and experiment drivers."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.defenders import NoopPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.eval import (
    aggregate,
    evaluate_policy,
    format_aggregate_table,
    format_sweep_table,
    run_episode,
    run_fig6,
    run_fig10,
    run_table2,
)
from repro.eval.metrics import EpisodeMetrics


@pytest.fixture()
def env():
    return repro.make_env(tiny_network(tmax=50), seed=0)


class TestRunEpisode:
    def test_metrics_fields(self, env):
        metrics = run_episode(env, NoopPolicy(), seed=1)
        assert metrics.steps == 50
        assert metrics.seed == 1
        assert metrics.avg_it_cost == 0.0
        assert np.isfinite(metrics.discounted_return)

    def test_max_steps_truncates(self, env):
        metrics = run_episode(env, NoopPolicy(), seed=1, max_steps=10)
        assert metrics.steps == 10

    def test_deterministic_given_seed(self, env):
        a = run_episode(env, PlaybookPolicy(), seed=3)
        b = run_episode(env, PlaybookPolicy(), seed=3)
        assert a == b

    def test_active_policy_incurs_cost(self, env):
        metrics = run_episode(env, SemiRandomPolicy(rate=5.0), seed=1)
        assert metrics.avg_it_cost > 0


class TestAggregate:
    def test_mean_and_stderr(self):
        episodes = [
            EpisodeMetrics(10.0, 0, 0.1, 1.0, 50),
            EpisodeMetrics(20.0, 2, 0.3, 3.0, 50),
        ]
        agg = aggregate(episodes)
        assert agg.episodes == 2
        assert agg.mean("discounted_return") == pytest.approx(15.0)
        assert agg.mean("final_plcs_offline") == pytest.approx(1.0)
        assert agg.stderr("avg_it_cost") > 0

    def test_evaluate_policy(self, env):
        agg, episodes = evaluate_policy(env, NoopPolicy(), episodes=3, seed=0)
        assert agg.episodes == 3
        assert len(episodes) == 3
        assert {e.seed for e in episodes} == {0, 1, 2}


class TestTables:
    def test_aggregate_table_contains_policies_and_metrics(self, env):
        agg, _ = evaluate_policy(env, NoopPolicy(), episodes=2, seed=0)
        text = format_aggregate_table({"noop": agg, "other": agg}, title="T2")
        assert "T2" in text
        assert "noop" in text and "other" in text
        assert "Discounted Return" in text
        assert "+/-" in text

    def test_sweep_table(self, env):
        agg, _ = evaluate_policy(env, NoopPolicy(), episodes=2, seed=0)
        sweep = {0.1: {"noop": agg}, 0.9: {"noop": agg}}
        text = format_sweep_table(sweep, "final_plcs_offline", "effectiveness")
        assert "0.1" in text and "0.9" in text and "noop" in text


class TestExperiments:
    def test_run_table2(self):
        cfg = tiny_network(tmax=40)
        results = run_table2(cfg, {"noop": NoopPolicy()}, episodes=2, seed=0)
        assert set(results) == {"noop"}
        assert results["noop"].episodes == 2

    def test_run_fig6_sweeps_effectiveness(self):
        cfg = tiny_network(tmax=30)
        sweep = run_fig6(cfg, {"noop": NoopPolicy()},
                         effectiveness_values=(0.1, 0.9), episodes=1, seed=0)
        assert set(sweep) == {0.1, 0.9}

    def test_run_fig10_has_both_attackers(self):
        cfg = tiny_network(tmax=30)
        out = run_fig10(cfg, {"noop": NoopPolicy()}, episodes=1, seed=0)
        assert set(out) == {"APT1", "APT2"}

    def test_fig10_apt2_preserves_perturbations(self):
        """APT2 must inherit cleanup effectiveness and time scale."""
        from repro.attacker import apt2

        cfg = tiny_network()
        derived = apt2(cleanup_effectiveness=cfg.apt.cleanup_effectiveness,
                       time_scale=cfg.apt.time_scale)
        assert derived.time_scale == cfg.apt.time_scale
        assert derived.lateral_threshold == 1


class TestEvaluatePolicyPerLane:
    def test_each_lane_matches_single_env_evaluation(self):
        """Per-lane aggregates equal evaluate_policy on each lane's own
        environment (the contract the adversarial loops rely on)."""
        from repro.eval import evaluate_policy_per_lane

        base = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=30)
        variant = base.with_overrides(
            scenario_id="per-lane-variant",
            apt_overrides={"lateral_threshold": 1, "labor_rate": 3},
        )
        venv = repro.make_vec_from_specs([base, variant], seed=0)
        per_lane = evaluate_policy_per_lane(venv, PlaybookPolicy(),
                                            episodes=2, seed=3)
        assert len(per_lane) == 2
        for spec, (agg, episodes) in zip([base, variant], per_lane):
            ref_agg, ref_episodes = evaluate_policy(
                repro.make(spec), PlaybookPolicy(), 2, seed=3)
            assert agg == ref_agg
            assert episodes == ref_episodes

    def test_honours_per_lane_horizons(self):
        from repro.eval import evaluate_policy_per_lane

        short = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=10)
        long = repro.get_scenario("inasim-tiny-v1").with_overrides(
            scenario_id="per-lane-long", horizon=25)
        venv = repro.make_vec_from_specs([short, long], seed=0)
        per_lane = evaluate_policy_per_lane(venv, NoopPolicy(),
                                            episodes=1, seed=0)
        assert per_lane[0][1][0].steps == 10
        assert per_lane[1][1][0].steps == 25

    def test_restores_auto_reset_flag(self):
        from repro.eval import evaluate_policy_per_lane

        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10)
        assert venv.auto_reset
        evaluate_policy_per_lane(venv, NoopPolicy(), episodes=1, seed=0)
        assert venv.auto_reset

    def test_rejects_non_policy(self):
        from repro.eval import evaluate_policy_per_lane

        venv = repro.make_vec("inasim-tiny-v1", 1, seed=0, horizon=5)
        with pytest.raises(TypeError):
            evaluate_policy_per_lane(venv, "not-a-policy", episodes=1)


class TestEpisodeTelemetry:
    """Every evaluation path surfaces per-episode seed and wall time,
    and the telemetry stays out of metric equality."""

    def test_run_episode_records_wall_time(self, env):
        metrics = run_episode(env, NoopPolicy(), seed=0, max_steps=5)
        assert metrics.wall_time is not None and metrics.wall_time > 0
        assert metrics.seed == 0

    def test_wall_time_excluded_from_equality(self):
        a = EpisodeMetrics(1.0, 0, 0.0, 0.0, steps=5, seed=1, wall_time=0.1)
        b = EpisodeMetrics(1.0, 0, 0.0, 0.0, steps=5, seed=1, wall_time=9.9)
        assert a == b

    def test_single_env_seeds_and_wall_times(self, env):
        _, records = evaluate_policy(env, NoopPolicy(), episodes=3, seed=7,
                                     max_steps=5)
        assert [r.seed for r in records] == [7, 8, 9]
        assert all(r.wall_time > 0 for r in records)

    def test_vec_seeds_and_wall_times(self):
        from repro.eval import evaluate_policy_vec

        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=8)
        with venv:
            _, records = evaluate_policy_vec(venv, NoopPolicy(), episodes=4,
                                             seed=3)
        assert [r.seed for r in records] == [3, 4, 5, 6]
        assert all(r.wall_time > 0 for r in records)

    def test_per_lane_seeds_and_wall_times(self):
        from repro.eval import evaluate_policy_per_lane

        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=8)
        with venv:
            results = evaluate_policy_per_lane(venv, NoopPolicy(),
                                               episodes=2, seed=5)
        for _, records in results:
            assert [r.seed for r in records] == [5, 6]
            assert all(r.wall_time > 0 for r in records)

    def test_on_episode_callback_order_and_abort(self, env):
        seen = []
        evaluate_policy(env, NoopPolicy(), episodes=3, seed=0, max_steps=5,
                        on_episode=lambda i, m: seen.append((i, m.seed)))
        assert seen == [(0, 0), (1, 1), (2, 2)]

        class Stop(Exception):
            pass

        def abort(i, metrics):
            raise Stop()

        with pytest.raises(Stop):
            evaluate_policy(env, NoopPolicy(), episodes=3, seed=0,
                            max_steps=5, on_episode=abort)

    def test_vec_on_episode_callback(self):
        from repro.eval import evaluate_policy_vec

        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=8)
        seen = []
        with venv:
            evaluate_policy_vec(venv, NoopPolicy(), episodes=4, seed=0,
                                on_episode=lambda i, m: seen.append(i))
        assert sorted(seen) == [0, 1, 2, 3]
