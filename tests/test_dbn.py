"""Tests for the dynamic Bayes network: states, filter, learning,
validation."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.dbn import (
    ActionCategory,
    CanonicalState,
    DBNFilter,
    DBNTables,
    N_MU_BUCKETS,
    N_STATES,
    action_category,
    canonical_states,
    collect_episode,
    mu_bucket,
    validate_dbn,
)
from repro.dbn.states import N_ACTION_CATEGORIES, N_SCAN_TYPES
from repro.defenders import SemiRandomPolicy
from repro.net.nodes import Condition
from repro.sim.observations import Alert, Observation, ScanResult
from repro.sim.orchestrator import DefenderAction, DefenderActionType

_S = CanonicalState
_T = DefenderActionType


def _conditions(*conds, n=3):
    row = np.zeros((n, len(Condition)), dtype=bool)
    for cond in conds:
        row[0, cond] = True
    return row


class TestCanonicalStates:
    @pytest.mark.parametrize("conds,expected", [
        ((), _S.CLEAN),
        ((Condition.SCANNED,), _S.SCANNED),
        ((Condition.SCANNED, Condition.COMPROMISED), _S.COMP),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.REBOOT_PERSIST),
         _S.COMP_RB),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN), _S.ADMIN),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN,
          Condition.REBOOT_PERSIST), _S.ADMIN_RB),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN,
          Condition.CRED_PERSIST), _S.ADMIN_CRED),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN,
          Condition.CLEANED), _S.ADMIN_CLEANED),
        ((Condition.SCANNED, Condition.COMPROMISED, Condition.ADMIN,
          Condition.CRED_PERSIST, Condition.CLEANED), _S.ADMIN_CRED_CLEANED),
    ])
    def test_mapping(self, conds, expected):
        states = canonical_states(_conditions(*conds))
        assert states[0] == expected
        assert states[1] == _S.CLEAN  # untouched node stays clean

    def test_vectorized_over_nodes(self):
        conds = np.zeros((5, len(Condition)), dtype=bool)
        conds[2, Condition.SCANNED] = True
        states = canonical_states(conds)
        assert list(states) == [0, 0, 1, 0, 0]


class TestBuckets:
    def test_mu_buckets(self):
        assert mu_bucket(0) == 0
        assert mu_bucket(1) == 1
        assert mu_bucket(2) == 1
        assert mu_bucket(3) == 2
        assert mu_bucket(5) == 2
        assert mu_bucket(6) == 3
        assert mu_bucket(50) == 3
        assert mu_bucket(50) == N_MU_BUCKETS - 1

    def test_action_categories(self):
        assert action_category(_T.SIMPLE_SCAN) is ActionCategory.INVESTIGATE
        assert action_category(_T.ADVANCED_SCAN) is ActionCategory.INVESTIGATE
        assert action_category(_T.REBOOT) is ActionCategory.REBOOT
        assert action_category(_T.REIMAGE) is ActionCategory.REIMAGE
        assert action_category(_T.QUARANTINE) is ActionCategory.QUARANTINE
        assert action_category(_T.NOOP) is ActionCategory.NONE
        assert action_category(_T.RESET_PLC) is ActionCategory.NONE


def _uniform_tables() -> DBNTables:
    # mostly-identity dynamics with a small leak so likelihood evidence
    # can move belief mass between states
    trans = np.zeros((N_MU_BUCKETS, N_ACTION_CATEGORIES, N_STATES, N_STATES))
    trans[..., :, :] = 0.9 * np.eye(N_STATES) + 0.1 / N_STATES
    alert = np.full((N_STATES, 4), 0.25)
    scan = np.full((N_SCAN_TYPES, N_STATES, 2), 0.5)
    return DBNTables(trans, alert, scan)


def _informative_tables() -> DBNTables:
    tables = _uniform_tables()
    # clean nodes rarely alert; compromised nodes alert often
    tables.alert_lik[:] = 0.02
    tables.alert_lik[_S.CLEAN, 0] = 0.94
    tables.alert_lik[_S.SCANNED, 0] = 0.94
    for s in range(int(_S.COMP), N_STATES):
        tables.alert_lik[s] = (0.55, 0.25, 0.15, 0.05)
    # scans detect compromised nodes
    tables.scan_lik[:, :int(_S.COMP), 1] = 0.01
    tables.scan_lik[:, :int(_S.COMP), 0] = 0.99
    tables.scan_lik[:, int(_S.COMP):, 1] = 0.6
    tables.scan_lik[:, int(_S.COMP):, 0] = 0.4
    return tables


class TestDBNTables:
    def test_shape_validation(self):
        good = _uniform_tables()
        with pytest.raises(ValueError):
            DBNTables(good.transition[:1], good.alert_lik, good.scan_lik)
        with pytest.raises(ValueError):
            DBNTables(good.transition, good.alert_lik[:, :2], good.scan_lik)

    def test_save_load_roundtrip(self, tmp_path):
        tables = _informative_tables()
        path = tmp_path / "dbn.npz"
        tables.save(path)
        loaded = DBNTables.load(path)
        assert np.allclose(loaded.transition, tables.transition)
        assert np.allclose(loaded.alert_lik, tables.alert_lik)
        assert np.allclose(loaded.scan_lik, tables.scan_lik)


class TestDBNFilter:
    def _obs(self, topo_n, alerts=(), scans=(), completed=()):
        return Observation(
            t=1,
            alerts=list(alerts),
            scan_results=list(scans),
            node_busy=np.zeros(topo_n, bool),
            plc_busy=np.zeros(0, bool),
            quarantined=np.zeros(topo_n, bool),
            completed_actions=list(completed),
        )

    @pytest.fixture()
    def topo(self):
        from repro.net import build_topology

        return build_topology(tiny_network().topology)

    def test_starts_clean(self, topo):
        dbn = DBNFilter(_uniform_tables(), topo)
        assert np.allclose(dbn.beliefs[:, _S.CLEAN], 1.0)
        assert dbn.expected_compromised == 0.0

    def test_beliefs_stay_normalized(self, topo):
        dbn = DBNFilter(_informative_tables(), topo)
        rng = np.random.default_rng(0)
        for t in range(50):
            alerts = [Alert(t, int(rng.integers(1, 4)), int(rng.integers(topo.n_nodes)))]
            dbn.update(self._obs(topo.n_nodes, alerts=alerts))
            assert np.allclose(dbn.beliefs.sum(axis=1), 1.0)
            assert (dbn.beliefs >= 0).all()

    def test_alerts_raise_suspicion(self, topo):
        dbn = DBNFilter(_informative_tables(), topo)
        baseline = dbn.prob_compromised()[0]
        for t in range(5):
            dbn.update(self._obs(topo.n_nodes, alerts=[Alert(t, 2, 0)]))
        assert dbn.prob_compromised()[0] > baseline
        # nodes without alerts get *less* suspicious than the alerted one
        assert dbn.prob_compromised()[0] > dbn.prob_compromised()[1]

    def test_detected_scan_raises_clean_scan_lowers(self, topo):
        tables = _informative_tables()
        dbn = DBNFilter(tables, topo)
        for t in range(3):
            dbn.update(self._obs(topo.n_nodes, alerts=[Alert(t, 2, 0), Alert(t, 2, 1)]))
        p0 = dbn.prob_compromised()[0]
        p1 = dbn.prob_compromised()[1]
        detect = ScanResult(4, 0, True, _T.SIMPLE_SCAN)
        clean = ScanResult(4, 1, False, _T.SIMPLE_SCAN)
        dbn.update(self._obs(topo.n_nodes, scans=[detect, clean]))
        assert dbn.prob_compromised()[0] > p0
        assert dbn.prob_compromised()[1] < p1

    def test_reset(self, topo):
        dbn = DBNFilter(_informative_tables(), topo)
        dbn.update(self._obs(topo.n_nodes, alerts=[Alert(0, 3, 0)]))
        dbn.reset()
        assert np.allclose(dbn.beliefs[:, _S.CLEAN], 1.0)

    def test_completed_reimage_uses_reimage_transition(self, topo):
        tables = _informative_tables()
        # re-image deterministically returns nodes to CLEAN
        tables.transition[:, ActionCategory.REIMAGE, :, :] = 0.0
        tables.transition[:, ActionCategory.REIMAGE, :, _S.CLEAN] = 1.0
        dbn = DBNFilter(tables, topo)
        for t in range(5):
            dbn.update(self._obs(topo.n_nodes, alerts=[Alert(t, 3, 0)]))
        assert dbn.prob_compromised()[0] > 0.1
        reimage = DefenderAction(_T.REIMAGE, 0)
        dbn.update(self._obs(topo.n_nodes, completed=[reimage]))
        assert dbn.prob_compromised()[0] < 0.1


class TestLearning:
    def test_collect_episode_shapes(self):
        cfg = tiny_network(tmax=40)
        env = repro.make_env(cfg, seed=0)
        log = collect_episode(env, SemiRandomPolicy(rate=2.0), seed=0)
        steps = log.action_cats.shape[0]
        assert log.states.shape == (steps + 1, env.topology.n_nodes)
        assert log.alert_levels.shape == (steps, env.topology.n_nodes)
        assert steps == 40

    def test_fit_tables_are_distributions(self, tiny_tables):
        assert np.allclose(tiny_tables.transition.sum(axis=-1), 1.0)
        assert np.allclose(tiny_tables.alert_lik.sum(axis=-1), 1.0)
        assert np.allclose(tiny_tables.scan_lik.sum(axis=-1), 1.0)

    def test_fitted_dynamics_are_sensible(self, tiny_tables):
        # a clean node under no action stays mostly clean
        stay_clean = tiny_tables.transition[0, 0, _S.CLEAN, _S.CLEAN]
        assert stay_clean > 0.5
        # compromised nodes alert more often than clean nodes
        p_alert_comp = 1 - tiny_tables.alert_lik[_S.COMP_RB, 0]
        p_alert_clean = 1 - tiny_tables.alert_lik[_S.CLEAN, 0]
        assert p_alert_comp > p_alert_clean

    def test_validation_scores_fitted_dbn(self, tiny_tables):
        cfg = tiny_network(tmax=80)
        result = validate_dbn(
            lambda: repro.make_env(cfg),
            lambda: SemiRandomPolicy(rate=3.0),
            tiny_tables,
            episodes=2,
            seed=50,
        )
        assert result.steps > 0
        # smoke threshold: the tiny fit faces a stealthy (cleaned) APT,
        # so accuracy is well below the paper-network figure (~0.75)
        assert result.accuracy > 0.45
        assert result.mean_kl < 2.5
        assert np.isfinite(result.max_kl)
