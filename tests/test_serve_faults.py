"""Fault tolerance at the service layer: job retries, fault accounting,
store reconciliation after an unclean shutdown, and client-side retry.

The end-to-end tests run a real server (ephemeral port, its own event
loop thread) and inject real worker faults through
:mod:`repro.testing.faults` — the pool workers a served job spawns
inherit the armed plan from the environment, exactly as the chaos CI
job arms them.
"""

import time

import pytest

from repro.serve import EvalService, RunStore, ServeClient, ServeQueueFullError
from repro.serve.store import SCHEMA_VERSION, _MIGRATIONS
from repro.sim.vec_backends import WorkerDiedError
from repro.testing import FaultPlan, inject_faults
from test_serve_service import ServerHandle

TINY = "inasim-tiny-v1"

pytestmark = pytest.mark.chaos


# ----------------------------------------------------------------------
# run store: migration, reconciliation, idempotent episode records
# ----------------------------------------------------------------------
class TestStoreFaults:
    def test_v1_store_migrates_to_current(self, tmp_path):
        import sqlite3

        path = str(tmp_path / "old.sqlite")
        conn = sqlite3.connect(path)
        with conn:
            conn.executescript(_MIGRATIONS[0])
            conn.execute("PRAGMA user_version=1")
            conn.execute(
                "INSERT INTO runs (run_id, kind, status, created_at)"
                " VALUES ('legacy1', 'evaluate', 'done', 1.0)"
            )
        conn.close()
        with RunStore(path) as store:
            assert store.schema_version == SCHEMA_VERSION == 3
            run = store.get_run("legacy1")
            assert run["faults"] == 0  # backfilled default
            store.finish_run("legacy1", {"ok": True}, faults=3)
            assert store.get_run("legacy1")["faults"] == 3
            assert store.promotions() == []  # v3 table exists and is empty

    def test_reconcile_marks_stranded_runs_interrupted(self, tmp_path):
        path = str(tmp_path / "runs.sqlite")
        with RunStore(path) as store:
            run_id = store.create_run("evaluate", scenario_id=TINY,
                                      detail={"scenario": TINY})
            store.mark_running(run_id)
            done_id = store.create_run("evaluate", status="queued")
            store.mark_running(done_id)
            store.finish_run(done_id)
        # "the server was SIGKILLed here" — reopen and reconcile
        with RunStore(path) as store:
            stranded = store.reconcile_interrupted()
            assert [r["run_id"] for r in stranded] == [run_id]
            assert stranded[0]["status"] == "interrupted"
            assert stranded[0]["detail"] == {"scenario": TINY}
            run = store.get_run(run_id)
            assert run["status"] == "interrupted"
            assert "exited mid-run" in run["error"]
            assert store.get_run(done_id)["status"] == "done"
            assert store.reconcile_interrupted() == []  # idempotent

    def test_record_episode_is_idempotent_per_index(self, tmp_path):
        with RunStore(str(tmp_path / "runs.sqlite")) as store:
            run_id = store.create_run("evaluate")
            store.record_episode(run_id, 0, {"attempt": 1}, seed=5)
            store.record_episode(run_id, 0, {"attempt": 2}, seed=5)
            episodes = store.episodes_of(run_id)
            assert len(episodes) == 1
            assert episodes[0]["detail"] == {"attempt": 2}


# ----------------------------------------------------------------------
# the retry loop (stubbed execution: exact attempt semantics)
# ----------------------------------------------------------------------
class TestJobRetries:
    def _service(self, tmp_path, **kwargs):
        kwargs.setdefault("retry_backoff", 0.001)
        return EvalService(str(tmp_path / "runs.sqlite"), **kwargs)

    def _submitted_job(self, service):
        import asyncio

        async def submit():
            await service.start()
            job = service.submit({"scenario": TINY, "episodes": 1,
                                  "max_steps": 5})
            # pull it off the queue so shutdown won't cancel it
            service._queue.get_nowait()
            return job

        return asyncio.run(submit())

    def test_job_survives_fatal_fault_via_retry(self, tmp_path):
        service = self._service(tmp_path, job_retries=2)
        job = self._submitted_job(service)
        attempts = []

        def flaky(j):
            attempts.append(j.completed)
            j.completed = 1  # pretend an episode landed pre-crash
            if len(attempts) < 3:
                raise WorkerDiedError("a worker died (test)")
            return {"ok": True}

        service._execute_evaluation = flaky
        service._run_job(job)
        assert job.status == "done"
        assert job.retries_used == 2
        assert attempts == [0, 0, 0]  # completed reset before each re-run
        run = service.store.get_run(job.id)
        assert run["status"] == "done"
        assert service.fault_summary()["job_retries"] == 2
        service.store.close()

    def test_budget_exhaustion_fails_the_job(self, tmp_path):
        service = self._service(tmp_path, job_retries=1)
        job = self._submitted_job(service)

        def doomed(j):
            raise WorkerDiedError("a worker died (test)")

        service._execute_evaluation = doomed
        service._run_job(job)
        assert job.status == "error"
        assert "died" in job.error
        assert job.retries_used == 1
        assert service.store.get_run(job.id)["status"] == "error"
        service.store.close()

    def test_job_retries_field_overrides_service_budget(self, tmp_path):
        service = self._service(tmp_path, job_retries=5)
        job = self._submitted_job(service)
        job.request.retries = 0  # this job opts out of retrying

        calls = []

        def doomed(j):
            calls.append(1)
            raise WorkerDiedError("a worker died (test)")

        service._execute_evaluation = doomed
        service._run_job(job)
        assert job.status == "error" and len(calls) == 1
        service.store.close()


# ----------------------------------------------------------------------
# end-to-end: served jobs under real injected worker faults
# ----------------------------------------------------------------------
class TestServedChaos:
    def test_pooled_job_survives_worker_crash(self, tmp_path):
        """The issue's acceptance criterion: an evaluate job whose pool
        worker is killed mid-job completes anyway — supervision (and,
        past the restart budget, in-parent degradation) rides through
        the crashes — and the run row records the fault count."""
        argv = {"kind": "evaluate", "scenario": TINY, "policy": "playbook",
                "episodes": 4, "seed": 3, "max_steps": 20}
        with ServerHandle(tmp_path / "runs.sqlite", max_queue=8) as server:
            clean = server.client.wait(
                server.client.submit({**argv, "num_envs": 4,
                                      "backend": "sync"})["job_id"],
                timeout=120)
            with inject_faults(FaultPlan(seed=0, kill_on_steps=(3,))):
                job = server.client.submit({**argv, "num_envs": 4,
                                            "backend": "process",
                                            "num_workers": 2})
                done = server.client.wait(job["job_id"], timeout=120)
            assert done["status"] == "done"
            assert done["faults"]["worker_faults"] >= 1
            assert done["metrics"] == clean["metrics"]  # still bit-exact
            run = server.client.run(job["job_id"])
            assert run["faults"] >= 1
            health = server.client.health()
            assert health["faults"]["worker_faults"] >= 1

    def test_unsupervised_job_exhausts_retries_to_error(self, tmp_path):
        """supervise=False restores fail-fast workers: every attempt
        dies to the armed kill plan, the retry budget burns down, and
        the job lands as an error with its fault count recorded."""
        with ServerHandle(tmp_path / "runs.sqlite", max_queue=8,
                          supervise=False, job_retries=1,
                          retry_backoff=0.01) as server:
            with inject_faults(FaultPlan(seed=0, kill_on_steps=(2,),
                                         kill_worker=0)):
                job = server.client.submit({
                    "kind": "evaluate", "scenario": TINY,
                    "policy": "playbook", "episodes": 2, "seed": 0,
                    "max_steps": 20, "num_envs": 2, "backend": "process",
                    "num_workers": 1,
                })
                done = server.client.wait(job["job_id"], timeout=120,
                                          raise_on_failure=False)
            assert done["status"] == "error"
            assert "died" in done["error"]
            assert done["faults"]["retries_used"] == 1
            assert done["faults"]["worker_faults"] >= 2  # one per attempt
            assert server.client.run(job["job_id"])["faults"] >= 2

    def test_restart_reconciles_and_requeues_stranded_runs(self, tmp_path):
        """A run left ``running`` by a killed server is marked
        ``interrupted`` when the next server opens the store, and with
        ``requeue_interrupted`` it is resubmitted from its recorded
        payload and actually completes."""
        path = tmp_path / "runs.sqlite"
        payload = {"kind": "evaluate", "scenario": TINY, "policy": "playbook",
                   "episodes": 1, "seed": 7, "max_steps": 10}
        with RunStore(str(path)) as store:
            stranded_id = store.create_run("evaluate", scenario_id=TINY,
                                           detail=payload)
            store.mark_running(stranded_id)  # ...and the server "dies"
        with ServerHandle(path, max_queue=8,
                          requeue_interrupted=True) as server:
            health = server.client.health()
            assert health["faults"]["jobs_interrupted"] == 1
            assert health["faults"]["jobs_requeued"] == 1
            assert (server.client.run(stranded_id)["status"]
                    == "interrupted")
            requeued = [j for j in server.client.jobs()
                        if f"requeued:{stranded_id}" in j["tags"]]
            assert len(requeued) == 1
            done = server.client.wait(requeued[0]["job_id"], timeout=120)
            assert done["status"] == "done"
            assert done["seed"] == 7


# ----------------------------------------------------------------------
# client-side resilience
# ----------------------------------------------------------------------
class TestClientRetries:
    def test_transient_errors_retry_then_succeed(self):
        client = ServeClient(port=1, retries=3, backoff=0.0)
        outcomes = [ConnectionResetError("boom"),
                    ServeQueueFullError("full", 429), {"ok": True}]

        def fake_once(method, path, payload=None):
            result = outcomes.pop(0)
            if isinstance(result, Exception):
                raise result
            return result

        client._request_once = fake_once
        assert client._request("GET", "/health") == {"ok": True}
        assert outcomes == []

    def test_retry_budget_exhaustion_surfaces_the_error(self):
        client = ServeClient(port=1, retries=2, backoff=0.0)
        calls = []

        def always_down(method, path, payload=None):
            calls.append(1)
            raise ConnectionRefusedError("no server")

        client._request_once = always_down
        with pytest.raises(ConnectionRefusedError):
            client._request("GET", "/health")
        assert len(calls) == 3  # first try + 2 retries

    def test_protocol_errors_never_retry(self):
        from repro.serve import ServeNotFoundError

        client = ServeClient(port=1, retries=5, backoff=0.0)
        calls = []

        def gone(method, path, payload=None):
            calls.append(1)
            raise ServeNotFoundError("nope", 404)

        client._request_once = gone
        with pytest.raises(ServeNotFoundError):
            client._request("GET", "/runs/xyz")
        assert len(calls) == 1

    def test_wait_backs_off_and_treats_interrupted_as_terminal(
            self, monkeypatch):
        from repro.serve import JobFailedError

        client = ServeClient(port=1, retries=0)
        statuses = iter(["queued", "running", "running", "interrupted"])
        client.job = lambda job_id: {"job_id": job_id,
                                     "status": next(statuses)}
        sleeps = []
        monkeypatch.setattr("repro.serve.client.time.sleep",
                            lambda s: sleeps.append(s))
        with pytest.raises(JobFailedError):
            client.wait("j1", timeout=30, poll=0.1, max_poll=0.2)
        assert sleeps == [0.1, pytest.approx(0.15), pytest.approx(0.2)]
