"""Cross-module integration tests for the extension stack.

Each test exercises a realistic pipeline spanning several extension
packages -- the combinations a downstream user would actually run, not
just the modules in isolation.
"""

import numpy as np

import repro
from repro.config import tiny_network
from repro.defenders.acso import ACSOPolicy
from repro.eval import run_table2
from repro.eval.analysis import action_counts, dwell_time
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    C51Config,
    C51Trainer,
    DQNConfig,
    DistributionalAttentionQNetwork,
    DuelingAttentionQNetwork,
    QNetConfig,
    collect_demonstrations,
    pretrain,
)
from repro.rl.pretrain import PretrainConfig
from repro.sim.trace import record_episode

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)
FAST_DQN = DQNConfig(batch_size=8, warmup=8, update_every=4,
                     target_update=40, buffer_size=400, n_step=3)


class TestPretrainedVariantPipelines:
    def test_dueling_net_pretrains_from_demonstrations(self, tiny_tables):
        """DQfD margin pretraining works for the dueling head too."""
        from repro.defenders import DBNExpertPolicy

        cfg = tiny_network(tmax=30)
        env = repro.make_env(cfg, seed=0)
        qnet = DuelingAttentionQNetwork(SMALL_QNET, seed=0)
        qnet.bind_topology(env.topology)
        featurizer = ACSOFeaturizer(env.topology, tiny_tables)
        expert = DBNExpertPolicy(tiny_tables, seed=0, max_actions=1)
        demos = collect_demonstrations(env, expert, featurizer, qnet,
                                       episodes=1, seed=0, max_steps=20)
        losses = pretrain(qnet, demos,
                          PretrainConfig(iterations=5, batch_size=8, seed=0))
        assert len(losses) == 5
        assert all(np.isfinite(loss) for loss in losses)

    def test_c51_policy_through_table2_driver(self, tiny_tables):
        """A distributional network drives the paper's experiment
        harness unchanged (forward() returns expected Q)."""
        cfg = tiny_network(tmax=20)
        net = DistributionalAttentionQNetwork(
            SMALL_QNET, seed=0, c51=C51Config(n_atoms=7))
        results = run_table2(
            cfg, {"C51 ACSO": ACSOPolicy(net, tiny_tables)},
            episodes=1, seed=0, max_steps=20,
        )
        assert np.isfinite(results["C51 ACSO"].mean("discounted_return"))

    def test_c51_trainer_then_greedy_eval(self, tiny_tables):
        cfg = tiny_network(tmax=25)
        env = repro.make_env(cfg, seed=0)
        net = DistributionalAttentionQNetwork(
            SMALL_QNET, seed=0, c51=C51Config(n_atoms=11))
        trainer = C51Trainer(env, net,
                             ACSOFeaturizer(env.topology, tiny_tables),
                             FAST_DQN)
        trainer.train_episode(seed=0, max_steps=20)
        from repro.eval import run_episode

        metrics = run_episode(env, ACSOPolicy(net, tiny_tables), seed=1,
                              max_steps=20)
        assert np.isfinite(metrics.discounted_return)


class TestAdversarialWithLearnedDefender:
    def test_best_response_against_acso(self, tiny_tables):
        from repro.adversarial import (
            AttackerParameterSpace,
            CrossEntropySearch,
            make_defender_fitness,
        )

        cfg = tiny_network(tmax=25)
        defender = ACSOPolicy(AttentionQNetwork(SMALL_QNET, seed=0),
                              tiny_tables)
        fitness = make_defender_fitness(cfg, defender, episodes=1,
                                        max_steps=25)
        space = AttackerParameterSpace(base=cfg.apt)
        result = CrossEntropySearch(space, fitness, population=2,
                                    seed=0).run(iterations=1)
        assert np.isfinite(result.best_fitness)

    def test_robustness_matrix_with_acso_row(self, tiny_tables):
        from repro.adversarial import robustness_matrix
        from repro.attacker import apt2

        cfg = tiny_network(tmax=20)
        matrix = robustness_matrix(
            cfg,
            {"ACSO": ACSOPolicy(AttentionQNetwork(SMALL_QNET, seed=0),
                                tiny_tables)},
            {"APT2": apt2(time_scale=10.0)},
            episodes=1, max_steps=20,
        )
        assert np.isfinite(
            matrix["ACSO"]["APT2"].mean("discounted_return")
        )


class TestOPEOfGreedyTarget:
    def test_greedy_target_estimated_from_exploratory_log(self, tiny_tables):
        """The deployment question end to end: estimate the *greedy*
        policy's value from data logged by its epsilon-soft version."""
        from repro.validation import (
            StochasticQPolicy,
            collect_logged_episodes,
            weighted_importance_sampling,
        )

        cfg = tiny_network(tmax=20)
        env = repro.make_env(cfg, seed=0)
        qnet = AttentionQNetwork(SMALL_QNET, seed=0)
        qnet.bind_topology(env.topology)
        behavior = StochasticQPolicy(qnet, tiny_tables, temperature=None,
                                     epsilon=0.5, seed=2)
        # a near-greedy target: pure greedy has zero probability on any
        # exploratory logged action, which zeroes every 20-step weight
        target = StochasticQPolicy(qnet, tiny_tables, temperature=None,
                                   epsilon=0.05)
        logged = collect_logged_episodes(env, behavior, episodes=3,
                                         seed=0, max_steps=20)
        wis = weighted_importance_sampling(logged, target)
        returns = [ep.discounted_return() for ep in logged]
        # WIS is a convex combination of logged returns
        assert min(returns) - 1e-9 <= wis.estimate <= max(returns) + 1e-9
        assert wis.ess > 0


class TestTraceAnalysisOfLearnedPolicy:
    def test_acso_trace_end_to_end(self, tiny_tables, tmp_path):
        from repro.sim.trace import EpisodeTrace

        cfg = tiny_network(tmax=40)
        env = repro.make_env(cfg, seed=0)
        policy = ACSOPolicy(AttentionQNetwork(SMALL_QNET, seed=0),
                            tiny_tables)
        trace = record_episode(env, policy, seed=0, max_steps=40)
        assert trace.policy == "acso"
        path = tmp_path / "acso.jsonl"
        trace.to_jsonl(path)
        loaded = EpisodeTrace.from_jsonl(path)
        dwell = dwell_time(loaded)
        assert 0.0 <= dwell.fraction <= 1.0
        counts = action_counts(loaded)
        assert counts["total_investigations"] >= 0


class TestScriptedAttackVsDefenders:
    def test_playbook_recovers_scripted_disruption(self):
        """Stage a deterministic disruption; the playbook's PLC-repair
        rule must bring the process back online."""
        from repro.attacker.scripted import ScriptedAttacker, beachhead_rush
        from repro.defenders import PlaybookPolicy
        from repro.net.nodes import Condition

        cfg = tiny_network(tmax=80)
        probe = repro.make_env(cfg, seed=0)
        probe.reset(seed=0)
        beachhead = int(np.flatnonzero(
            probe.sim.state.conditions[:, Condition.COMPROMISED]
        )[0])
        env = repro.make_env(
            cfg, seed=0,
            attacker=ScriptedAttacker(
                beachhead_rush(beachhead, target_plcs=[0, 1], spacing=3)
            ),
        )
        obs = env.reset(seed=0)
        policy = PlaybookPolicy()
        policy.reset(env)
        ever_offline, end_offline = 0, 0
        done = False
        while not done:
            obs, _, done, info = env.step(policy.act(obs))
            ever_offline = max(ever_offline, info["n_plcs_offline"])
            end_offline = info["n_plcs_offline"]
        assert ever_offline >= 1  # the scripted attack landed
        assert end_offline == 0  # and the playbook repaired it
