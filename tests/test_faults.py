"""Chaos suite: worker supervision under injected faults.

Every test here drives the *real* failure paths — ``os._exit`` inside a
live worker process, wedged steps, byte-flipped reply frames, crashes
mid-relane — through :mod:`repro.testing.faults`, and then pins the
paper's determinism contract: a supervised run that ate worker faults
produces **bit-identical** trajectories to a fault-free one, because
recovery replays each lane's journaled actions on the fixed
``seed + i + N * episode`` schedule.

The fast tests run on the tiny network and are part of the CI
``chaos-smoke`` job (``-m "chaos and not slow"``). The paper-network
parity test (the issue's acceptance criterion) is ``chaos`` *and*
``slow`` and runs in the nightly matrix.
"""

import multiprocessing as mp

import numpy as np
import pytest

import repro
from repro.defenders import PlaybookPolicy
from repro.eval.runner import evaluate_policy_vec
from repro.sim import vec_transport as vt
from repro.sim.orchestrator import DefenderAction, DefenderActionType
from repro.sim.vec_backends import VecPool, WorkerDiedError
from repro.testing import FaultPlan, inject_faults
from repro.testing.faults import frame_check_from_env, plan_from_env

pytestmark = pytest.mark.chaos


def _specs(n, horizon=10):
    base = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=horizon)
    return [base] * n


def _sync_rewards(n=4, steps=12, horizon=10):
    venv = repro.make_vec_from_specs(_specs(n, horizon), seed=0)
    venv.reset(seed=0)
    return np.stack([venv.step(None).rewards.copy() for _ in range(steps)])


def _chaos_rewards(backend, plan, n=4, steps=12, horizon=10, num_workers=2,
                   **sup):
    """Run ``steps`` lockstep steps under ``plan``; the *entire* run —
    construction included — sits inside ``inject_faults`` so respawned
    workers re-arm the same plan from the environment."""
    with inject_faults(plan):
        venv = repro.make_vec_from_specs(_specs(n, horizon), seed=0,
                                         backend=backend,
                                         num_workers=num_workers)
        try:
            if sup:
                venv.configure_supervision(**sup)
            venv.reset(seed=0)
            rewards = np.stack(
                [venv.step(None).rewards.copy() for _ in range(steps)])
            stats = venv.fault_stats
        finally:
            venv.close()
    return rewards, stats


class TestHarness:
    def test_plan_json_round_trip(self):
        plan = FaultPlan(seed=3, kill_every=5, kill_on_steps=(2, 9),
                         kill_worker=1, delay_on_step=4, delay_seconds=0.5,
                         corrupt_on_steps=(7,), fail_relane=2)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_plan_from_json_ignores_unknown_keys(self):
        plan = FaultPlan.from_json(
            '{"kill_every": 3, "future_knob": true, "kill_on_steps": [1, 2]}')
        assert plan == FaultPlan(kill_every=3, kill_on_steps=(1, 2))

    def test_inject_faults_restores_environment(self):
        assert plan_from_env() is None
        with inject_faults(FaultPlan(corrupt_on_steps=(1,))) as plan:
            assert plan_from_env() == plan
            assert frame_check_from_env()  # armed automatically
        assert plan_from_env() is None
        assert not frame_check_from_env()

    def test_restore_codec_round_trip(self):
        act = DefenderAction(DefenderActionType.QUARANTINE, 0)
        states = [
            (vt.RESTORE_VIRGIN, None, 0, [None, 3, [act]]),
            (vt.RESTORE_RESET, 17, 2, []),
            (vt.RESTORE_REBUILT, -4, 1, [7, None]),
        ]
        buf = vt.encode_restore_cmd(states)
        assert buf[0] == vt.OP_RESTORE
        decoded = vt.decode_restore_cmd(buf, len(states))
        for (kind, seed, count, actions), (k2, s2, c2, a2) in zip(states,
                                                                  decoded):
            assert (kind, seed, count) == (k2, s2, c2)
            assert len(actions) == len(a2)
            for orig, back in zip(actions, a2):
                if isinstance(orig, list):
                    assert [(a.atype, a.target) for a in orig] \
                        == [(a.atype, a.target) for a in back]
                else:
                    assert orig == back

    def test_frame_seal_and_open(self):
        body = bytearray(b"step-reply-payload")
        sealed = vt.seal_frame(bytearray(body))
        assert bytes(vt.open_frame(sealed)) == bytes(body)
        corrupt = bytearray(sealed)
        corrupt[len(corrupt) // 2] ^= 0xFF
        with pytest.raises(vt.FrameError):
            vt.open_frame(corrupt)
        with pytest.raises(vt.FrameError):
            vt.open_frame(b"abc")


class TestRecoveryParity:
    """Killed, wedged, and corrupted workers recover bit-exactly."""

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_kill_recovery_is_bit_identical(self, backend):
        clean = _sync_rewards()
        chaotic, stats = _chaos_rewards(
            backend, FaultPlan(seed=2, kill_on_steps=(3,)),
            max_restarts=100, backoff_base=0.0)
        np.testing.assert_array_equal(clean, chaotic)
        assert stats["faults"] >= 1
        assert stats["restarts"] >= 1
        assert stats["last_fault"]

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_corrupt_frame_detected_and_recovered(self, backend):
        clean = _sync_rewards()
        chaotic, stats = _chaos_rewards(
            backend, FaultPlan(seed=0, corrupt_on_steps=(4,)),
            max_restarts=100, backoff_base=0.0)
        np.testing.assert_array_equal(clean, chaotic)
        assert stats["corrupt_frames"] >= 1

    def test_wedged_step_times_out_and_recovers(self):
        clean = _sync_rewards(steps=8)
        chaotic, stats = _chaos_rewards(
            "process", FaultPlan(seed=1, delay_on_step=3, delay_seconds=30.0),
            steps=8, step_timeout=0.5, max_restarts=100, backoff_base=0.0)
        np.testing.assert_array_equal(clean, chaotic)
        assert stats["timeouts"] >= 1

    def test_restart_budget_exhaustion_degrades_in_parent(self):
        """A lane slice whose worker dies every few steps folds into
        in-parent execution — still bit-exact, never an infinite
        respawn loop."""
        clean = _sync_rewards()
        chaotic, stats = _chaos_rewards(
            "process", FaultPlan(seed=0, kill_worker=0, kill_every=3),
            max_restarts=2, backoff_base=0.0)
        np.testing.assert_array_equal(clean, chaotic)
        assert stats["degraded_workers"] == [0]
        assert stats["restarts"] >= 2

    def test_supervision_off_fails_fast(self):
        with inject_faults(FaultPlan(seed=0, kill_on_steps=(2,))):
            venv = repro.make_vec_from_specs(_specs(4), seed=0,
                                             backend="process",
                                             num_workers=2)
            venv.configure_supervision(enabled=False)
            with pytest.raises(WorkerDiedError, match="died"):
                venv.reset(seed=0)
                for _ in range(12):
                    venv.step(None)
            assert venv._closed
        assert not [c for c in mp.active_children() if c.is_alive()]

    def test_journal_overflow_fails_fast(self):
        """An episode longer than the journal cap is unrecoverable by
        construction; a fault then surfaces instead of replaying a
        truncated history."""
        with inject_faults(FaultPlan(seed=0, kill_on_steps=(5,))):
            venv = repro.make_vec_from_specs(_specs(4, horizon=20), seed=0,
                                             backend="process",
                                             num_workers=2)
            venv.configure_supervision(journal_limit=2, backoff_base=0.0)
            with pytest.raises(WorkerDiedError, match="died"):
                venv.reset(seed=0)
                for _ in range(12):
                    venv.step(None)
            assert venv._closed


class TestRelaneFaults:
    def test_worker_death_during_relane_recovers(self):
        """fail_relane re-fires on the re-sent command each respawn, so
        the slice ends up degraded — and the relane still lands with a
        lineup bit-identical to fresh construction."""
        lineup = _specs(4, horizon=8)
        fresh = repro.make_vec_from_specs(lineup, seed=3)
        fresh.reset(seed=5)
        with inject_faults(FaultPlan(seed=0, fail_relane=1)):
            pool = VecPool()
            try:
                venv = pool.acquire(_specs(4), seed=0, backend="process",
                                    num_workers=2)
                venv.configure_supervision(max_restarts=2, backoff_base=0.0)
                venv.reset(seed=0)
                venv.step(None)
                venv = pool.acquire(lineup, seed=3, backend="process",
                                    num_workers=2)
                assert venv.fault_stats["faults"] >= 1
                venv.reset(seed=5)
                for _ in range(8):
                    np.testing.assert_array_equal(fresh.step(None).rewards,
                                                  venv.step(None).rewards)
            finally:
                pool.close()

    def test_worker_death_during_rebuild_lane_recovers(self):
        variant = _specs(1)[0].with_overrides(
            apt_overrides={"lateral_threshold": 1})
        reference = repro.make_vec_from_specs(
            [_specs(1)[0], variant], seed=0)
        reference.reset(seed=0)
        with inject_faults(FaultPlan(seed=0, fail_relane=1)):
            venv = repro.make_vec_from_specs(_specs(2), seed=0,
                                             backend="process",
                                             num_workers=1)
            try:
                venv.configure_supervision(max_restarts=2, backoff_base=0.0)
                venv.rebuild_lane(1, variant)
                assert venv.fault_stats["faults"] >= 1
                venv.reset(seed=0)
                for _ in range(6):
                    np.testing.assert_array_equal(
                        reference.step(None).rewards,
                        venv.step(None).rewards)
            finally:
                venv.close()


def _metric_tuple(m):
    # everything except wall_time, which measures the host, not the sim
    return (m.discounted_return, m.final_plcs_offline, m.avg_it_cost,
            m.avg_nodes_compromised, m.steps, m.seed)


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["process", "shm"])
def test_chaos_parity_on_paper_network(backend):
    """The issue's acceptance criterion: a 16-lane paper-network
    evaluation with a worker killed every 50 steps produces metrics
    bit-identical to the fault-free run."""
    spec = repro.get_scenario("inasim-paper-v1").with_overrides(horizon=200)
    specs = [spec] * 16

    sync = repro.make_vec_from_specs(specs, seed=0)
    _, clean = evaluate_policy_vec(sync, PlaybookPolicy, episodes=16,
                                   seed=0, max_steps=200)

    with inject_faults(FaultPlan(seed=1, kill_every=50)):
        venv = repro.make_vec_from_specs(specs, seed=0, backend=backend,
                                         num_workers=4)
        try:
            venv.configure_supervision(max_restarts=1000, backoff_base=0.0)
            _, chaotic = evaluate_policy_vec(venv, PlaybookPolicy,
                                             episodes=16, seed=0,
                                             max_steps=200)
            stats = venv.fault_stats
        finally:
            venv.close()

    assert stats["faults"] >= 1
    assert [_metric_tuple(m) for m in clean] \
        == [_metric_tuple(m) for m in chaotic]
