"""Tests for the autograd Tensor: op semantics and gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor, concat, no_grad, stack

rng = np.random.default_rng(12)


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f()
        flat[i] = orig - eps
        lo = f()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(make_output, x: np.ndarray, tol: float = 1e-5):
    """Compare autograd to finite differences for scalarized output."""
    t = Tensor(x, requires_grad=True)
    out = make_output(t)
    loss = (out * out).sum()
    loss.backward()
    analytic = t.grad

    def f():
        val = make_output(Tensor(x)).data
        return float((val * val).sum())

    numeric = numeric_grad(f, x)
    assert np.allclose(analytic, numeric, atol=tol, rtol=1e-3), (
        analytic, numeric
    )


class TestForwardSemantics:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3.0))
        assert np.allclose((a + b).data, 1 + np.arange(3.0))

    def test_matmul_matches_numpy(self):
        a, b = rng.normal(size=(4, 5)), rng.normal(size=(5, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_batched_matmul(self):
        a, b = rng.normal(size=(3, 4, 5)), rng.normal(size=(3, 5, 2))
        assert np.allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_softmax_rows_sum_to_one(self):
        s = Tensor(rng.normal(size=(4, 7))).softmax(axis=-1)
        assert np.allclose(s.data.sum(axis=-1), 1.0)

    def test_reductions(self):
        x = rng.normal(size=(3, 4))
        assert np.isclose(Tensor(x).sum().data, x.sum())
        assert np.isclose(Tensor(x).mean().data, x.mean())
        assert np.allclose(Tensor(x).max(axis=1).data, x.max(axis=1))

    def test_gather_rows(self):
        x = rng.normal(size=(4, 6))
        idx = [1, 0, 5, 2]
        out = Tensor(x).gather_rows(idx)
        assert np.allclose(out.data, x[np.arange(4), idx])

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.detach() * 2
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        z = x * 2
        assert z.requires_grad


class TestBackward:
    _CONST = rng.normal(size=(3, 4))

    @pytest.mark.parametrize("op", [
        lambda t: t + Tensor(TestBackward._CONST),
        lambda t: t * Tensor(TestBackward._CONST),
        lambda t: t - 2.5,
        lambda t: t / 3.0,
        lambda t: t ** 2,
        lambda t: t.relu(),
        lambda t: t.leaky_relu(0.1),
        lambda t: t.tanh(),
        lambda t: t.sigmoid(),
        lambda t: t.exp(),
        lambda t: t.softmax(axis=-1),
        lambda t: t.reshape(4, 3),
        lambda t: t.transpose(1, 0),
        lambda t: t.sum(axis=0),
        lambda t: t.mean(axis=1, keepdims=True),
        lambda t: t.max(axis=1),
        lambda t: t[1:, :2],
    ])
    def test_gradcheck_ops(self, op):
        check_grad(op, rng.normal(size=(3, 4)))

    def test_gradcheck_log_sqrt_abs(self):
        x = np.abs(rng.normal(size=(3, 4))) + 0.5
        check_grad(lambda t: t.log(), x.copy())
        check_grad(lambda t: t.sqrt(), x.copy())
        check_grad(lambda t: t.abs(), rng.normal(size=(3, 4)))

    def test_gradcheck_matmul(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_grad(lambda t: t @ Tensor(b), a)
        check_grad(lambda t: Tensor(a) @ t, b)

    def test_gradcheck_batched_matmul_broadcast(self):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        check_grad(lambda t: t @ Tensor(b), a)
        check_grad(lambda t: Tensor(a) @ t, b)

    def test_gradcheck_broadcast_add(self):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        check_grad(lambda t: Tensor(a) + t, b)
        check_grad(lambda t: t + Tensor(b), a)

    def test_gradcheck_concat_stack(self):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        check_grad(lambda t: concat([t, Tensor(b)], axis=1), a)
        c = rng.normal(size=(2, 3))
        check_grad(lambda t: stack([t, Tensor(c)], axis=0), a.copy())

    def test_gradcheck_gather_rows(self):
        x = rng.normal(size=(4, 5))
        idx = [0, 3, 3, 1]
        check_grad(lambda t: t.gather_rows(idx), x)

    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        assert np.allclose(x.grad, [5.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_nograd_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2
        b = x * 5
        ((a + b) * 1.0).sum().backward()
        assert np.allclose(x.grad, [7.0])
