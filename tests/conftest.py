"""Shared fixtures: tiny environments and a session-scoped fitted DBN."""

from __future__ import annotations

import pytest

import repro
from repro.config import paper_network, tiny_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.net.topology import build_topology


@pytest.fixture()
def tiny_cfg():
    return tiny_network(tmax=200)


@pytest.fixture()
def tiny_env(tiny_cfg):
    return repro.make_env(tiny_cfg, seed=0)


@pytest.fixture()
def tiny_topology(tiny_cfg):
    return build_topology(tiny_cfg.topology)


@pytest.fixture(scope="session")
def paper_topology():
    return build_topology(paper_network().topology)


@pytest.fixture(scope="session")
def tiny_tables():
    """DBN tables fitted once on the tiny network (shared read-only)."""
    cfg = tiny_network(tmax=150)
    return fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=3.0),
        episodes=8,
        seed=7,
    )
