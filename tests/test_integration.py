"""End-to-end integration tests: full episodes with every policy,
cross-policy sanity ordering, and determinism of the whole stack."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.defenders import (
    DBNExpertPolicy,
    NoopPolicy,
    PlaybookPolicy,
    SemiRandomPolicy,
)
from repro.defenders.acso import ACSOPolicy
from repro.eval import evaluate_policy, run_episode
from repro.rl import AttentionQNetwork, QNetConfig


@pytest.fixture()
def cfg():
    return tiny_network(tmax=150)


class TestFullEpisodes:
    def test_noop_suffers_most_compromise(self, cfg, tiny_tables):
        env = repro.make_env(cfg, seed=0)
        noop = sum(
            run_episode(env, NoopPolicy(), seed=s).avg_nodes_compromised
            for s in range(4)
        )
        active = sum(
            run_episode(env, SemiRandomPolicy(rate=8.0), seed=s).avg_nodes_compromised
            for s in range(4)
        )
        assert noop > active

    def test_active_defense_reduces_plc_damage(self, cfg):
        env = repro.make_env(cfg, seed=0)
        noop_offline = [
            run_episode(env, NoopPolicy(), seed=s).final_plcs_offline
            for s in range(4)
        ]
        pb_offline = [
            run_episode(env, PlaybookPolicy(), seed=s).final_plcs_offline
            for s in range(4)
        ]
        assert sum(pb_offline) <= sum(noop_offline)

    def test_every_policy_completes_episodes(self, cfg, tiny_tables):
        env = repro.make_env(cfg, seed=0)
        qnet = AttentionQNetwork(QNetConfig(), seed=0)
        policies = [
            NoopPolicy(),
            SemiRandomPolicy(rate=4.0),
            PlaybookPolicy(),
            DBNExpertPolicy(tiny_tables),
            ACSOPolicy(qnet, tiny_tables),
        ]
        for policy in policies:
            metrics = run_episode(env, policy, seed=5, max_steps=60)
            assert metrics.steps == 60
            assert np.isfinite(metrics.discounted_return)

    def test_full_stack_determinism(self, cfg, tiny_tables):
        env = repro.make_env(cfg, seed=0)
        policy = DBNExpertPolicy(tiny_tables, seed=3)
        a = run_episode(env, policy, seed=21)
        b = run_episode(env, policy, seed=21)
        assert a == b

    def test_aggregated_evaluation(self, cfg):
        env = repro.make_env(cfg, seed=0)
        agg, results = evaluate_policy(env, PlaybookPolicy(), episodes=3, seed=0)
        assert agg.episodes == 3
        returns = [r.discounted_return for r in results]
        assert agg.mean("discounted_return") == pytest.approx(np.mean(returns))


class TestRewardAccounting:
    def test_discounted_return_bounded_by_theory(self, cfg):
        """No policy can exceed the perfect-defense return."""
        env = repro.make_env(cfg, seed=0)
        gamma = cfg.reward.gamma
        best = sum(gamma ** (t - 1) * 1.1 for t in range(1, cfg.tmax + 1))
        best += gamma ** (cfg.tmax - 1) * cfg.reward.terminal_reward
        for policy in (NoopPolicy(), PlaybookPolicy()):
            metrics = run_episode(env, policy, seed=2)
            assert metrics.discounted_return <= best + 1e-6

    def test_it_cost_matches_launched_actions(self, cfg):
        """Total charged cost never exceeds what the policy launched."""
        env = repro.make_env(cfg, seed=0)
        obs = env.reset(seed=8)
        policy = SemiRandomPolicy(rate=3.0, seed=1)
        policy.reset(env)
        from repro.sim.orchestrator import DEFENDER_ACTION_SPECS

        launched_cost = 0.0
        charged = 0.0
        done = False
        while not done:
            actions = policy.act(obs)
            obs, _, done, info = env.step(actions)
            for action in info["launched"]:
                spec = DEFENDER_ACTION_SPECS[action.atype]
                is_server = (
                    spec.targets == "node"
                    and env.topology.nodes[action.target].is_server
                )
                launched_cost += spec.cost(is_server)
            charged += info["it_cost"]
        assert charged <= launched_cost + 1e-9


class TestQuarantineEndToEnd:
    def test_quarantined_beachhead_stalls_attack(self, cfg):
        """Quarantining the beachhead node freezes APT progress."""
        from repro.sim.orchestrator import DefenderAction, DefenderActionType

        env = repro.make_env(cfg, seed=0, sample_qualitative=False)
        env.reset(seed=14)
        beachhead = int(np.flatnonzero(env.sim.state.compromised_mask())[0])
        env.step(DefenderAction(DefenderActionType.QUARANTINE, beachhead))
        for _ in range(10):
            _, _, _, info = env.step(None)
        # until the APT re-intrudes, nothing new is compromised and the
        # quarantined beachhead cannot reach the rest of the network
        assert info["n_compromised"] <= 1
        assert info["n_plcs_offline"] == 0
