"""Tests for defender actions: scans, mitigations, quarantine."""

import pytest

from repro.config import tiny_network
from repro.net import Condition, NodeType, build_topology
from repro.sim.orchestrator import (
    DEFENDER_ACTION_SPECS,
    DefenderAction,
    DefenderActionType,
    HOST_ACTIONS,
    PLC_ACTIONS,
    SERVER_ACTIONS,
    apply_mitigation,
    enumerate_actions,
    scan_detection_prob,
)
from repro.sim.state import NetworkState

_T = DefenderActionType


@pytest.fixture()
def topo():
    return build_topology(tiny_network().topology)


@pytest.fixture()
def state(topo):
    return NetworkState(topo)


def _compromise(state, node, *extra):
    state.set_condition(node, Condition.SCANNED)
    state.set_condition(node, Condition.COMPROMISED)
    for cond in extra:
        state.set_condition(node, cond)


class TestMenus:
    def test_host_menu_has_quarantine_servers_do_not(self):
        assert _T.QUARANTINE in HOST_ACTIONS
        assert _T.QUARANTINE not in SERVER_ACTIONS
        assert set(SERVER_ACTIONS) < set(HOST_ACTIONS)

    def test_plc_menu(self):
        assert PLC_ACTIONS == (_T.RESET_PLC, _T.REPLACE_PLC)

    def test_enumerate_counts(self, topo):
        actions = enumerate_actions(topo)
        hosts = sum(1 for n in topo.nodes if not n.is_server)
        servers = topo.n_nodes - hosts
        expected = 1 + hosts * len(HOST_ACTIONS) + servers * len(SERVER_ACTIONS) \
            + topo.n_plcs * len(PLC_ACTIONS)
        assert len(actions) == expected
        assert actions[0].is_noop

    def test_enumerate_unique(self, topo):
        actions = enumerate_actions(topo)
        assert len(set(actions)) == len(actions)


class TestScanDetection:
    def test_zero_without_malware(self, state):
        spec = DEFENDER_ACTION_SPECS[_T.SIMPLE_SCAN]
        assert scan_detection_prob(spec, state, 0, 0.5) == 0.0

    def test_base_probability_when_compromised(self, state):
        _compromise(state, 0)
        spec = DEFENDER_ACTION_SPECS[_T.SIMPLE_SCAN]
        assert scan_detection_prob(spec, state, 0, 0.5) == pytest.approx(0.03)

    def test_cleanup_reduces_detection(self, state):
        _compromise(state, 0, Condition.ADMIN, Condition.CLEANED)
        spec = DEFENDER_ACTION_SPECS[_T.SIMPLE_SCAN]
        assert scan_detection_prob(spec, state, 0, 0.5) == pytest.approx(0.015)
        assert scan_detection_prob(spec, state, 0, 0.9) == pytest.approx(0.003)
        assert scan_detection_prob(spec, state, 0, 0.0) == pytest.approx(0.03)

    def test_advanced_scan_aggregates_hourly_draws(self, state):
        _compromise(state, 0)
        spec = DEFENDER_ACTION_SPECS[_T.ADVANCED_SCAN]
        expected = 1 - (1 - 0.05) ** 8
        assert scan_detection_prob(spec, state, 0, 0.5) == pytest.approx(expected)

    def test_human_analysis_most_reliable(self, state):
        _compromise(state, 0)
        human = scan_detection_prob(DEFENDER_ACTION_SPECS[_T.HUMAN_ANALYSIS], state, 0, 0.5)
        simple = scan_detection_prob(DEFENDER_ACTION_SPECS[_T.SIMPLE_SCAN], state, 0, 0.5)
        assert human > simple


class TestMitigations:
    def test_reboot_clears_without_persistence(self, state, topo):
        _compromise(state, 0)
        assert apply_mitigation(DefenderAction(_T.REBOOT, 0), state, topo)
        assert not state.is_compromised(0)
        # SCANNED survives: it models attacker recon knowledge
        assert state.has_condition(0, Condition.SCANNED)

    def test_reboot_blocked_by_persistence(self, state, topo):
        _compromise(state, 0, Condition.REBOOT_PERSIST)
        assert not apply_mitigation(DefenderAction(_T.REBOOT, 0), state, topo)
        assert state.is_compromised(0)

    def test_password_reset_blocked_by_cred_persist(self, state, topo):
        _compromise(state, 0, Condition.ADMIN, Condition.CRED_PERSIST)
        assert not apply_mitigation(DefenderAction(_T.RESET_PASSWORD, 0), state, topo)
        assert state.is_compromised(0)

    def test_password_reset_clears_reboot_persisted_node(self, state, topo):
        _compromise(state, 0, Condition.REBOOT_PERSIST)
        assert apply_mitigation(DefenderAction(_T.RESET_PASSWORD, 0), state, topo)
        assert not state.is_compromised(0)
        assert not state.has_condition(0, Condition.REBOOT_PERSIST)

    def test_reimage_always_clears(self, state, topo):
        _compromise(state, 0, Condition.REBOOT_PERSIST, Condition.ADMIN,
                    Condition.CRED_PERSIST, Condition.CLEANED)
        assert apply_mitigation(DefenderAction(_T.REIMAGE, 0), state, topo)
        assert not state.is_compromised(0)
        assert not state.conditions[0, Condition.COMPROMISED:].any()

    def test_quarantine_toggles(self, state, topo):
        node = topo.nodes_of_type(NodeType.WORKSTATION)[0].node_id
        apply_mitigation(DefenderAction(_T.QUARANTINE, node), state, topo)
        assert state.is_quarantined(node)
        apply_mitigation(DefenderAction(_T.QUARANTINE, node), state, topo)
        assert not state.is_quarantined(node)

    def test_quarantine_rejected_for_server(self, state, topo):
        server = next(n.node_id for n in topo.nodes if n.is_server)
        assert not apply_mitigation(DefenderAction(_T.QUARANTINE, server), state, topo)
        assert not state.is_quarantined(server)

    def test_reset_plc_clears_disruption_not_destruction(self, state, topo):
        state.plc_disrupted[0] = True
        state.plc_firmware[0] = True
        state.plc_destroyed[1] = True
        apply_mitigation(DefenderAction(_T.RESET_PLC, 0), state, topo)
        assert not state.plc_disrupted[0] and not state.plc_firmware[0]
        apply_mitigation(DefenderAction(_T.RESET_PLC, 1), state, topo)
        assert state.plc_destroyed[1]  # reset cannot fix destroyed hardware

    def test_replace_plc_fixes_everything(self, state, topo):
        state.plc_destroyed[0] = True
        state.plc_disrupted[0] = True
        state.plc_firmware[0] = True
        apply_mitigation(DefenderAction(_T.REPLACE_PLC, 0), state, topo)
        assert not state.plc_destroyed[0]
        assert not state.plc_disrupted[0]
        assert not state.plc_firmware[0]

    def test_mitigation_on_clean_node_reports_no_change(self, state, topo):
        assert not apply_mitigation(DefenderAction(_T.REBOOT, 0), state, topo)


class TestCosts:
    def test_cost_selector(self):
        spec = DEFENDER_ACTION_SPECS[_T.REIMAGE]
        assert spec.cost(is_server=False) == 0.05
        assert spec.cost(is_server=True) == 0.1

    def test_noop_free(self):
        spec = DEFENDER_ACTION_SPECS[_T.NOOP]
        assert spec.cost_host == 0.0 and spec.duration == 0
