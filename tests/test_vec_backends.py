"""Backend parity, scenario serialization, and vector-env fixes.

The core guarantee of the backend abstraction: the same scenario and
seed produce bit-identical observation/reward/done trajectories on
every backend (``sync`` / ``process`` / ``shm``). Plus round-trip tests
for ScenarioSpec JSON (the worker shipping format) and regression tests
for the vectorized ``sample_actions`` and the ``reset_env`` episode
accounting.
"""

import json

import numpy as np
import pytest

import repro
from repro.scenarios import (
    ScenarioSpec,
    load_registry,
    load_spec,
    save_registry,
    save_spec,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.scenarios.registry import REGISTRY
from repro.sim.vec_backends import (
    AUTO_MIN_ENVS,
    ProcessVectorEnv,
    resolve_backend,
)
from repro.sim.vec_env import VectorEnv


def _obs_fingerprint(obs):
    return (
        obs.t,
        tuple((a.t, a.severity, a.node_id, a.source) for a in obs.alerts),
        tuple((s.t, s.node_id, s.detected) for s in obs.scan_results),
        obs.plc_disrupted.tolist(),
        obs.plc_destroyed.tolist(),
        obs.node_busy.tolist(),
        obs.quarantined.tolist(),
    )


def _rollout(venv, steps, seed, action_seed=7):
    """Seeded rollout under random valid actions; full fingerprints."""
    rng = np.random.default_rng(action_seed)
    observations = venv.reset(seed=seed)
    trace = [tuple(_obs_fingerprint(o) for o in observations)]
    rewards, dones = [], []
    for _ in range(steps):
        actions = venv.sample_actions(rng)
        step = venv.step(actions)
        trace.append(tuple(_obs_fingerprint(o) for o in step.observations))
        rewards.append(step.rewards.copy())
        dones.append(step.dones.copy())
    return trace, np.stack(rewards), np.stack(dones)


class TestBackendParity:
    def test_process_matches_sync(self):
        """Same scenario + seed => identical trajectories, pipes or not."""
        sync = repro.make_vec("inasim-tiny-v1", 3, seed=0, horizon=15)
        trace_s, rew_s, done_s = _rollout(sync, 25, seed=4)
        with repro.make_vec("inasim-tiny-v1", 3, seed=0, horizon=15,
                            backend="process", num_workers=2) as venv:
            trace_p, rew_p, done_p = _rollout(venv, 25, seed=4)
        assert trace_s == trace_p
        np.testing.assert_array_equal(rew_s, rew_p)
        np.testing.assert_array_equal(done_s, done_p)

    @pytest.mark.slow
    def test_shm_matches_sync(self):
        sync = repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=15)
        trace_s, rew_s, done_s = _rollout(sync, 25, seed=1)
        with repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=15,
                            backend="shm", num_workers=2) as venv:
            trace_h, rew_h, done_h = _rollout(venv, 25, seed=1)
        assert trace_s == trace_h
        np.testing.assert_array_equal(rew_s, rew_h)
        np.testing.assert_array_equal(done_s, done_h)

    @pytest.mark.slow
    def test_parity_spans_auto_reset_boundaries(self):
        """The seed+i+N*episode schedule survives worker partitioning."""
        sync = repro.make_vec("inasim-tiny-v1", 5, seed=0, horizon=8)
        _, rew_s, done_s = _rollout(sync, 30, seed=2)
        assert done_s.any()  # episodes rolled over mid-run
        with repro.make_vec("inasim-tiny-v1", 5, seed=0, horizon=8,
                            backend="process", num_workers=3) as venv:
            _, rew_p, done_p = _rollout(venv, 30, seed=2)
        np.testing.assert_array_equal(rew_s, rew_p)
        np.testing.assert_array_equal(done_s, done_p)

    def test_action_masks_match(self):
        sync = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=20)
        sync.reset(seed=0)
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=20,
                            backend="process", num_workers=1) as venv:
            venv.reset(seed=0)
            for _ in range(5):
                np.testing.assert_array_equal(
                    sync.action_masks(), venv.action_masks()
                )
                sync.step(np.array([1, 2]))
                venv.step(np.array([1, 2]))

    def test_custom_registered_scenario_ships_to_workers(self):
        spec = ScenarioSpec(
            scenario_id="test-worker-ship", network="tiny",
            reward_variant="availability", horizon=12, tags=("test",),
        )
        repro.register(spec, overwrite=True)
        try:
            sync = repro.make_vec("test-worker-ship", 2, seed=0)
            _, rew_s, _ = _rollout(sync, 12, seed=0)
            with repro.make_vec("test-worker-ship", 2, seed=0,
                                backend="process",
                                num_workers=2) as venv:
                assert venv.config.tmax == 12
                _, rew_p, _ = _rollout(venv, 12, seed=0)
            np.testing.assert_array_equal(rew_s, rew_p)
        finally:
            REGISTRY.unregister("test-worker-ship")


class TestBackendLifecycle:
    def test_metadata_and_policy_env(self):
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                            backend="process", num_workers=1) as venv:
            sync = repro.make_vec("inasim-tiny-v1", 1, seed=0, horizon=10)
            assert venv.n_actions == sync.n_actions
            assert venv.action_list == sync.action_list
            assert venv.config.tmax == 10
            assert venv.topology.n_nodes == sync.topology.n_nodes
            assert venv.policy_env(0).n_actions == venv.n_actions
            assert len(venv) == 2

    def test_close_is_idempotent_and_kills_workers(self):
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                              backend="process", num_workers=2)
        venv.reset(seed=0)
        venv.step(None)
        procs = list(venv._procs)
        venv.close()
        venv.close()  # second close is a no-op
        assert all(not p.is_alive() for p in procs)
        with pytest.raises(Exception):
            venv.step(None)

    def test_auto_reset_toggle_reaches_workers(self):
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=5,
                            backend="process", num_workers=1) as venv:
            venv.auto_reset = False
            venv.reset(seed=0)
            step = None
            for _ in range(5):
                step = venv.step(None)
            assert step.dones.all()
            # terminal observation survives: no auto reset happened
            assert all(obs.t == 5 for obs in step.observations)
            assert all("final_observation" not in info for info in step.infos)

    def test_reset_infos_populated(self):
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10,
                            backend="process", num_workers=2) as venv:
            # populated at construction, before any explicit reset
            assert len(venv.reset_infos) == 2
            venv.reset(seed=0)
            for info in venv.reset_infos:
                # exactly the beachhead workstation is compromised
                assert info["n_compromised"] == 1
                assert info["n_ws_compromised"] == 1
                assert info["n_srv_compromised"] == 0

    def test_reset_infos_track_auto_resets(self):
        """Auto-resets inside workers refresh the parent's reset_infos."""
        sync = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=4)
        with repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=4,
                            backend="process", num_workers=2) as venv:
            sync.reset(seed=0)
            venv.reset(seed=0)
            for _ in range(4):
                step_s = sync.step(None)
                step_p = venv.step(None)
            assert step_s.dones.all() and step_p.dones.all()
            assert venv.reset_infos == sync.reset_infos
            for info in venv.reset_infos:
                assert info["n_compromised"] == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            repro.make_vec("inasim-tiny-v1", 2, backend="threads")

    def test_payload_requires_spec_or_config(self):
        with pytest.raises(ValueError, match="spec.*config"):
            ProcessVectorEnv({}, 2)


class TestFinalObservationWireGuard:
    """``final_observation`` must never cross the wire with auto-reset
    off: only an auto-reset produces a legitimate final, so anything
    else in that slot is a stale leak (e.g. a wrapper echoing a previous
    episode's info)."""

    def _terminal_step(self):
        """A real terminal step whose infos carry final observations."""
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=5)
        venv.reset(seed=0)
        for _ in range(5):
            step = venv.step(None)
        assert step.dones.all()
        assert all("final_observation" in info for info in step.infos)
        return venv, step

    def test_round_trip_with_auto_reset_ships_final(self):
        from repro.sim import vec_transport as vt

        venv, step = self._terminal_step()
        dims = vt.dims_of(venv.envs[0])
        buf = vt.encode_step_reply(step.observations, step.rewards,
                                   step.dones, step.infos, [],
                                   auto_reset=True)
        _, _, dones, infos, _ = vt.decode_step_reply(buf, 2, dims)
        assert dones.all()
        for info, orig in zip(infos, step.infos):
            assert info["final_observation"].t == \
                orig["final_observation"].t == 5

    def test_round_trip_without_auto_reset_strips_final(self):
        from repro.sim import vec_transport as vt

        venv, step = self._terminal_step()
        dims = vt.dims_of(venv.envs[0])
        # same infos, but the group reports auto_reset disabled: the
        # encoder must refuse to ship the (necessarily stale) finals
        buf = vt.encode_step_reply(step.observations, step.rewards,
                                   step.dones, step.infos, [],
                                   auto_reset=False)
        _, rewards, dones, infos, _ = vt.decode_step_reply(buf, 2, dims)
        assert dones.all()
        np.testing.assert_array_equal(rewards, step.rewards)
        for info in infos:
            assert "final_observation" not in info
            assert info["t"] == 5  # the rest of the info is intact

    def test_worker_group_strips_stale_final_in_legacy_fallback(self):
        from repro.sim.vec_backends import _LaneGroupExecutor

        class _LeakyEnv:
            """Terminal lane whose info echoes a stale final and an
            unencodable extra key, forcing the legacy pickled reply."""

            def __init__(self, env):
                self._env = env
                self.n_actions = env.n_actions

            def __getattr__(self, name):
                return getattr(self._env, name)

            def step(self, action):
                obs, reward, done, info = self._env.step(action)
                info = dict(info)
                info["final_observation"] = obs
                info["unencodable"] = object()
                return obs, reward, True, info

        env = repro.make("inasim-tiny-v1", seed=0, horizon=10)
        venv = VectorEnv([_LeakyEnv(env)], auto_reset=False, base_seed=0)
        group = _LaneGroupExecutor.__new__(_LaneGroupExecutor)
        group.injector = None
        group.venv = venv
        venv.reset(seed=0)
        reply = group.do_step(None, None)
        # the unencodable key forced the pickled tuple path...
        assert isinstance(reply, tuple) and reply[0] == "ok"
        infos = reply[4]
        # ...which must have dropped the stale final all the same
        assert all("final_observation" not in info for info in infos)
        assert all("unencodable" in info for info in infos)


class TestSampleActionsVectorized:
    def test_samples_are_valid(self):
        venv = repro.make_vec("inasim-tiny-v1", 3, seed=0, horizon=30)
        venv.reset(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            actions = venv.sample_actions(rng)
            masks = venv.action_masks()
            assert actions.shape == (3,)
            assert actions.dtype == np.int64
            assert all(masks[i, a] for i, a in enumerate(actions))
            venv.step(actions)

    def test_uniform_over_valid_actions(self):
        """Every valid action is reachable; invalid ones never drawn."""
        venv = repro.make_vec("inasim-tiny-v1", 1, seed=0, horizon=30)
        venv.reset(seed=0)
        venv.step(np.array([1]))  # occupy a target -> mask out actions
        mask = venv.action_masks()[0]
        assert not mask.all()
        rng = np.random.default_rng(3)
        seen = set()
        for _ in range(400):
            seen.add(int(venv.sample_actions(rng)[0]))
        assert seen == set(np.flatnonzero(mask).tolist())

    def test_deterministic_given_rng(self):
        venv = repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=30)
        venv.reset(seed=0)
        a = venv.sample_actions(np.random.default_rng(11))
        b = venv.sample_actions(np.random.default_rng(11))
        np.testing.assert_array_equal(a, b)


class TestResetEnvEpisodeAccounting:
    def test_reset_env_advances_episode_count(self):
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=10)
        venv.reset(seed=0)
        assert venv._episode_counts == [0, 0]
        venv.reset_env(0)
        assert venv._episode_counts == [1, 0]

    def test_manual_reset_follows_reseed_schedule(self):
        """reset_env(i) draws seed + i + num_envs * episode_count."""
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=40)
        venv.reset(seed=0)
        obs = venv.reset_env(1)  # episode 1 on lane 1 -> seed 0 + 1 + 2*1
        solo = repro.make("inasim-tiny-v1", seed=3, horizon=40)
        solo.reset(seed=3)
        for _ in range(15):
            step = venv.step(None)
            _, r, _, _ = solo.step(None)
            assert step.rewards[1] == r

    def test_no_seed_collision_with_auto_reset(self):
        """A manual reset no longer replays the next auto-reset seed."""
        venv = repro.make_vec("inasim-tiny-v1", 2, seed=0, horizon=5)
        venv.reset(seed=0)
        venv.reset_env(0)  # consumes episode 1 of lane 0
        for _ in range(5):
            step = venv.step(None)
        # lane 0's auto reset must now use episode count 2, not replay 1
        assert venv._episode_counts[0] == 2


class TestScenarioSpecSerialization:
    @pytest.mark.parametrize("scenario_id", [
        "inasim-tiny-v1", "inasim-paper-v1", "paper-apt2-v1",
    ])
    def test_builtin_round_trip(self, scenario_id):
        spec = repro.get_scenario(scenario_id)
        assert spec_from_dict(spec_to_dict(spec)) == spec
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_round_trip_preserves_every_field(self):
        spec = ScenarioSpec(
            scenario_id="rt-full", network="small", attacker="scripted",
            reward_variant="cost_sensitive", horizon=77,
            cleanup_effectiveness=0.25, description="round trip",
            tags=("a", "b"),
        )
        restored = spec_from_json(spec_to_json(spec))
        assert restored == spec
        assert restored.tags == ("a", "b")

    def test_dict_is_json_native(self):
        data = spec_to_dict(repro.get_scenario("inasim-paper-v1"))
        assert json.loads(json.dumps(data)) == data

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec"):
            spec_from_dict({"scenario_id": "x", "flux_capacitor": 1})

    def test_invalid_values_still_validated(self):
        with pytest.raises(ValueError, match="network"):
            spec_from_dict({"scenario_id": "x", "network": "mega"})

    def test_file_round_trip(self, tmp_path):
        spec = repro.get_scenario("inasim-small-v1")
        path = tmp_path / "spec.json"
        save_spec(spec, path)
        assert load_spec(path) == spec

    def test_registry_round_trip_with_custom_scenario(self, tmp_path):
        custom = ScenarioSpec(
            scenario_id="test-registry-io", network="tiny",
            horizon=9, tags=("custom",),
        )
        repro.register(custom, overwrite=True)
        path = tmp_path / "registry.json"
        try:
            save_registry(path)
            specs = load_registry(path, register=False)
            by_id = {s.scenario_id: s for s in specs}
            assert by_id["test-registry-io"] == custom
            assert len(specs) == len(REGISTRY)
        finally:
            REGISTRY.unregister("test-registry-io")
        # loading with register=True restores the custom entry
        load_registry(path, register=True, overwrite=True)
        try:
            assert repro.get_scenario("test-registry-io") == custom
        finally:
            REGISTRY.unregister("test-registry-io")

    def test_restored_spec_builds_identical_env(self):
        spec = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=20)
        clone = spec_from_json(spec_to_json(spec))
        env_a = spec.build_env(seed=5)
        env_b = clone.build_env(seed=5)
        env_a.reset(seed=5)
        env_b.reset(seed=5)
        for _ in range(20):
            _, ra, _, _ = env_a.step(None)
            _, rb, _, _ = env_b.step(None)
            assert ra == rb


class TestAutoBackend:
    """backend="auto" selection logic and trajectory parity."""

    def test_single_core_always_sync(self):
        for n in (1, 4, 64):
            assert resolve_backend(n, cpu_count=1) == "sync"

    def test_narrow_batches_stay_sync(self):
        for n in range(1, AUTO_MIN_ENVS):
            assert resolve_backend(n, cpu_count=16) == "sync"

    def test_wide_batch_on_multicore_goes_process(self):
        assert resolve_backend(AUTO_MIN_ENVS, cpu_count=2) == "process"
        assert resolve_backend(16, cpu_count=8) == "process"

    def test_single_worker_request_stays_sync(self):
        assert resolve_backend(16, num_workers=1, cpu_count=8) == "sync"

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            resolve_backend(0, cpu_count=4)

    def test_defaults_to_os_cpu_count(self, monkeypatch):
        import repro.sim.vec_backends as vb

        monkeypatch.setattr(vb.os, "cpu_count", lambda: 1)
        assert resolve_backend(16) == "sync"
        monkeypatch.setattr(vb.os, "cpu_count", lambda: 8)
        assert resolve_backend(16) == "process"
        # os.cpu_count may return None on exotic platforms
        monkeypatch.setattr(vb.os, "cpu_count", lambda: None)
        assert resolve_backend(16) == "sync"

    def test_make_vec_auto_picks_sync_on_one_core(self, monkeypatch):
        import repro.sim.vec_backends as vb

        monkeypatch.setattr(vb.os, "cpu_count", lambda: 1)
        venv = repro.make_vec("inasim-tiny-v1", 4, seed=0, backend="auto")
        with venv:
            assert isinstance(venv, VectorEnv)

    def test_make_vec_auto_picks_process_on_multicore(self, monkeypatch):
        import repro.sim.vec_backends as vb

        monkeypatch.setattr(vb.os, "cpu_count", lambda: 4)
        venv = repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=12,
                              backend="auto", num_workers=2)
        with venv:
            assert isinstance(venv, ProcessVectorEnv)

    def test_auto_trajectories_match_sync_bit_exactly(self, monkeypatch):
        """Whatever auto picks, the trajectories are the sync ones."""
        import repro.sim.vec_backends as vb

        sync = repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=12)
        trace_s, rew_s, done_s = _rollout(sync, 18, seed=2)
        # force the interesting branch: auto resolves to process
        monkeypatch.setattr(vb.os, "cpu_count", lambda: 4)
        with repro.make_vec("inasim-tiny-v1", 4, seed=0, horizon=12,
                            backend="auto", num_workers=2) as venv:
            assert isinstance(venv, ProcessVectorEnv)
            trace_a, rew_a, done_a = _rollout(venv, 18, seed=2)
        assert trace_s == trace_a
        np.testing.assert_array_equal(rew_s, rew_a)
        np.testing.assert_array_equal(done_s, done_a)


class TestHeterogeneousLanes:
    """make_vec_from_specs: one scenario per lane, all backends."""

    def _specs(self):
        base = repro.get_scenario("inasim-tiny-v1").with_overrides(horizon=15)
        variant = base.with_overrides(
            scenario_id="tiny-het-variant",
            apt_overrides={"lateral_threshold": 1, "labor_rate": 3},
        )
        return [base, variant, base]

    def test_lane_config_reports_per_lane_attackers(self):
        venv = repro.make_vec_from_specs(self._specs(), seed=0)
        assert venv.lane_config(0).apt.lateral_threshold == 2  # tiny preset
        assert venv.lane_config(1).apt.lateral_threshold == 1
        assert venv.lane_config(1).apt.labor_rate == 3
        assert venv.config == venv.lane_config(0)

    def test_process_matches_sync(self):
        sync = repro.make_vec_from_specs(self._specs(), seed=0)
        trace_s, rew_s, done_s = _rollout(sync, 20, seed=3)
        with repro.make_vec_from_specs(self._specs(), seed=0,
                                       backend="process",
                                       num_workers=2) as venv:
            assert venv.lane_config(1).apt.labor_rate == 3
            trace_p, rew_p, done_p = _rollout(venv, 20, seed=3)
        assert trace_s == trace_p
        np.testing.assert_array_equal(rew_s, rew_p)
        np.testing.assert_array_equal(done_s, done_p)

    def test_lanes_actually_diverge(self):
        """The variant lane runs a different attacker than the base
        lanes (otherwise the heterogeneity is cosmetic)."""
        venv = repro.make_vec_from_specs(self._specs(), seed=0)
        _, rewards, _ = _rollout(venv, 30, seed=5)
        assert not np.array_equal(rewards[:, 0], rewards[:, 1])
        # identical specs on identical seeds stay identical: lanes 0 and
        # 2 differ only through their seed offsets, so compare lane 0
        # against a fresh env of the same spec and seed
        again = repro.make_vec_from_specs(self._specs(), seed=0)
        _, rewards2, _ = _rollout(again, 30, seed=5)
        np.testing.assert_array_equal(rewards, rewards2)

    def test_registered_ids_resolve(self):
        venv = repro.make_vec_from_specs(
            ["inasim-tiny-v1", "inasim-tiny-v1"], seed=0)
        assert venv.num_envs == 2

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            repro.make_vec_from_specs([])

    def test_mismatched_topologies_rejected(self):
        specs = [repro.get_scenario("inasim-tiny-v1"),
                 repro.get_scenario("inasim-small-v1")]
        with pytest.raises(ValueError):
            repro.make_vec_from_specs(specs, seed=0)
