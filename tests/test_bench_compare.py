"""The CI benchmark-regression gate (benchmarks/compare_bench_throughput.py).

The comparator is CI-load-bearing: a bug that always passes would
silently disable the throughput gate, one that always fails would block
every PR. Pin the verdict logic on synthetic reports.
"""

import importlib.util
import pathlib

_spec = importlib.util.spec_from_file_location(
    "compare_bench_throughput",
    pathlib.Path(__file__).parent.parent
    / "benchmarks"
    / "compare_bench_throughput.py",
)
_mod = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_mod)
compare = _mod.compare


def _report(sync, process, shm, batched=None):
    results = [
        {"network": "paper", "backend": "sync", "num_envs": 16,
         "aggregate_steps_per_s": sync},
        {"network": "paper", "backend": "process", "num_envs": 16,
         "aggregate_steps_per_s": process},
        {"network": "paper", "backend": "shm", "num_envs": 16,
         "aggregate_steps_per_s": shm},
    ]
    if batched is not None:
        results.append(
            {"network": "paper", "backend": "batched", "num_envs": 16,
             "aggregate_steps_per_s": batched})
    return {"results": results}


BASE = _report(40_000.0, 20_000.0, 20_000.0)


class TestBenchGate:
    def test_identical_reports_pass(self):
        status, lines = compare(BASE, BASE)
        assert status == 0

    def test_within_tolerance_passes(self):
        status, _ = compare(_report(40_000, 15_000, 19_000), BASE,
                            max_regression=0.30)
        assert status == 0

    def test_parallel_regression_fails(self):
        status, lines = compare(_report(40_000, 10_000, 20_000), BASE,
                                max_regression=0.30)
        assert status == 1
        assert any("FAIL" in line and "process" in line for line in lines)

    def test_slow_host_is_calibrated_away(self):
        """Half-speed host, same code: every cell scales together."""
        status, _ = compare(_report(20_000, 10_000, 10_000), BASE,
                            max_regression=0.30)
        assert status == 0

    def test_calibration_cell_excluded_from_aggregate(self):
        """A host just inside the drift allowance must not fail the
        aggregate through the sync cell's raw ratio (only calibrated
        per-cell ratios feed the geomean)."""
        status, lines = compare(_report(16_400, 7_500, 7_500), BASE,
                                max_regression=0.30, max_host_drift=0.60)
        assert status == 0, lines

    def test_slow_host_masks_nothing_relative(self):
        """Half-speed host AND a real transport regression still fails."""
        status, _ = compare(_report(20_000, 5_000, 10_000), BASE,
                            max_regression=0.30)
        assert status == 1

    def test_catastrophic_sync_drop_fails(self):
        status, lines = compare(_report(10_000, 5_000, 5_000), BASE,
                                max_host_drift=0.60)
        assert status == 1
        assert any("host-drift" in line for line in lines)

    def test_no_overlap_is_unusable(self):
        status, _ = compare({"results": []}, BASE)
        assert status == 2

    def test_missing_calibration_cell_is_unusable(self):
        tiny_only = {"results": [
            {"network": "tiny", "backend": "sync", "num_envs": 4,
             "aggregate_steps_per_s": 1.0},
        ]}
        merged = {"results": BASE["results"] + tiny_only["results"]}
        status, _ = compare(tiny_only, merged)
        assert status == 2

    def test_uncalibrated_mode_compares_raw(self):
        status, _ = compare(_report(20_000, 10_000, 10_000), BASE,
                            calibrate=False)
        assert status == 1

    def test_batched_regression_fails(self):
        base = _report(40_000, 20_000, 20_000, batched=100_000)
        status, lines = compare(
            _report(40_000, 20_000, 20_000, batched=60_000), base,
            max_regression=0.30)
        assert status == 1
        assert any("FAIL" in line and "batched" in line for line in lines)

    def test_batched_within_tolerance_passes(self):
        base = _report(40_000, 20_000, 20_000, batched=100_000)
        status, _ = compare(
            _report(40_000, 20_000, 20_000, batched=80_000), base,
            max_regression=0.30)
        assert status == 0

    def test_tracked_batched_cell_cannot_vanish(self):
        """A baseline with a batched row rejects reports lacking it —
        the gate must not silently shrink to the other backends."""
        base = _report(40_000, 20_000, 20_000, batched=100_000)
        status, lines = compare(_report(40_000, 20_000, 20_000), base)
        assert status == 2
        assert any("batched" in line for line in lines)
