"""Tests for the baseline defender policies."""

import numpy as np
import pytest

import repro
from repro.config import tiny_network
from repro.defenders import (
    DBNExpertPolicy,
    NoopPolicy,
    PlaybookPolicy,
    SemiRandomPolicy,
)
from repro.sim.observations import Alert, Observation, ScanResult
from repro.sim.orchestrator import DefenderAction, DefenderActionType

_T = DefenderActionType


def _obs(n_nodes=7, n_plcs=4, t=1, alerts=(), scans=(), completed=(),
         plc_disrupted=None, plc_destroyed=None):
    return Observation(
        t=t,
        alerts=list(alerts),
        scan_results=list(scans),
        plc_disrupted=plc_disrupted if plc_disrupted is not None
        else np.zeros(n_plcs, bool),
        plc_destroyed=plc_destroyed if plc_destroyed is not None
        else np.zeros(n_plcs, bool),
        node_busy=np.zeros(n_nodes, bool),
        plc_busy=np.zeros(n_plcs, bool),
        quarantined=np.zeros(n_nodes, bool),
        completed_actions=list(completed),
    )


@pytest.fixture()
def env():
    return repro.make_env(tiny_network(tmax=60), seed=0)


class TestNoop:
    def test_never_acts(self, env):
        policy = NoopPolicy()
        policy.reset(env)
        assert policy.act(env.reset(seed=0)) == []


class TestSemiRandom:
    def test_actions_target_valid_objects(self, env):
        policy = SemiRandomPolicy(rate=8.0, seed=1)
        obs = env.reset(seed=0)
        policy.reset(env)
        n, m = env.topology.n_nodes, env.topology.n_plcs
        for _ in range(20):
            for action in policy.act(obs):
                if action.atype in (_T.RESET_PLC, _T.REPLACE_PLC):
                    assert 0 <= action.target < m
                else:
                    assert 0 <= action.target < n

    def test_no_duplicate_targets_within_step(self, env):
        policy = SemiRandomPolicy(rate=30.0, seed=2)
        obs = env.reset(seed=0)
        policy.reset(env)
        actions = policy.act(obs)
        node_targets = [a.target for a in actions
                        if a.atype not in (_T.RESET_PLC, _T.REPLACE_PLC)]
        assert len(node_targets) == len(set(node_targets))

    def test_respects_busy_mask(self, env):
        policy = SemiRandomPolicy(rate=30.0, seed=3)
        obs = env.reset(seed=0)
        policy.reset(env)
        obs.node_busy[:] = True
        obs.plc_busy[:] = True
        assert policy.act(obs) == []

    def test_quarantine_only_on_hosts(self, env):
        policy = SemiRandomPolicy(rate=50.0, seed=4)
        obs = env.reset(seed=0)
        policy.reset(env)
        servers = {n.node_id for n in env.topology.nodes if n.is_server}
        for _ in range(30):
            for action in policy.act(obs):
                if action.atype is _T.QUARANTINE:
                    assert action.target not in servers

    def test_reset_restores_seed(self, env):
        policy = SemiRandomPolicy(rate=5.0, seed=9)
        obs = env.reset(seed=0)
        policy.reset(env)
        first = policy.act(obs)
        policy.reset(env)
        assert policy.act(obs) == first


class TestPlaybook:
    def test_alert_triggers_scan(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        actions = policy.act(_obs(alerts=[Alert(1, 1, 0)]))
        assert DefenderAction(_T.SIMPLE_SCAN, 0) in actions

    def test_severity3_triggers_human_analysis(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        actions = policy.act(_obs(alerts=[Alert(1, 3, 0)]))
        assert DefenderAction(_T.HUMAN_ANALYSIS, 0) in actions

    def test_server_alert_uses_advanced_scan(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        server = next(n.node_id for n in env.topology.nodes if n.is_server)
        actions = policy.act(_obs(alerts=[Alert(1, 1, server)]))
        assert DefenderAction(_T.ADVANCED_SCAN, server) in actions

    def test_coa_ladder_escalates_on_detection(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        policy.act(_obs(t=1, alerts=[Alert(1, 1, 0)]))  # launch scan
        # scan detects -> reboot
        actions = policy.act(_obs(t=3, scans=[ScanResult(3, 0, True, _T.SIMPLE_SCAN)]))
        assert DefenderAction(_T.REBOOT, 0) in actions
        # reboot completes -> re-scan
        actions = policy.act(_obs(t=4, completed=[DefenderAction(_T.REBOOT, 0)]))
        assert DefenderAction(_T.SIMPLE_SCAN, 0) in actions
        # detect again -> password reset
        actions = policy.act(_obs(t=6, scans=[ScanResult(6, 0, True, _T.SIMPLE_SCAN)]))
        assert DefenderAction(_T.RESET_PASSWORD, 0) in actions
        # and again -> re-image
        actions = policy.act(_obs(t=8, completed=[DefenderAction(_T.RESET_PASSWORD, 0)]))
        assert DefenderAction(_T.SIMPLE_SCAN, 0) in actions
        actions = policy.act(_obs(t=10, scans=[ScanResult(10, 0, True, _T.SIMPLE_SCAN)]))
        assert DefenderAction(_T.REIMAGE, 0) in actions

    def test_clean_scan_terminates_coa(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        policy.act(_obs(t=1, alerts=[Alert(1, 1, 0)]))
        actions = policy.act(_obs(t=3, scans=[ScanResult(3, 0, False, _T.SIMPLE_SCAN)]))
        assert all(a.target != 0 for a in actions)
        # no further actions without a new alert
        assert policy.act(_obs(t=4)) == []

    def test_one_coa_per_node(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        first = policy.act(_obs(t=1, alerts=[Alert(1, 1, 0), Alert(1, 2, 0)]))
        assert len([a for a in first if a.target == 0]) == 1

    def test_plc_repairs(self, env):
        policy = PlaybookPolicy()
        policy.reset(env)
        disrupted = np.zeros(4, bool)
        disrupted[1] = True
        destroyed = np.zeros(4, bool)
        destroyed[2] = True
        actions = policy.act(_obs(plc_disrupted=disrupted, plc_destroyed=destroyed))
        assert DefenderAction(_T.RESET_PLC, 1) in actions
        assert DefenderAction(_T.REPLACE_PLC, 2) in actions


class TestDBNExpert:
    def test_acts_on_suspicious_nodes(self, env, tiny_tables):
        policy = DBNExpertPolicy(tiny_tables, seed=0)
        policy.reset(env)
        obs = _obs()
        # hammer node 0 with alerts until the expert responds
        responded = False
        for t in range(30):
            actions = policy.act(_obs(t=t, alerts=[Alert(t, 2, 0)] * 2))
            if any(a.target == 0 for a in actions):
                responded = True
                break
        assert responded

    def test_max_actions_limits_output(self, env, tiny_tables):
        policy = DBNExpertPolicy(tiny_tables, seed=0, max_actions=1)
        policy.reset(env)
        for t in range(20):
            alerts = [Alert(t, 2, n) for n in range(4)]
            assert len(policy.act(_obs(t=t, alerts=alerts))) <= 1

    def test_plc_repair_prioritized(self, env, tiny_tables):
        policy = DBNExpertPolicy(tiny_tables, seed=0, max_actions=1)
        policy.reset(env)
        destroyed = np.zeros(4, bool)
        destroyed[0] = True
        actions = policy.act(_obs(plc_destroyed=destroyed,
                                  alerts=[Alert(1, 2, 0)]))
        assert actions == [DefenderAction(_T.REPLACE_PLC, 0)]

    def test_mitigation_mapping_follows_belief(self, env, tiny_tables):
        from repro.dbn import CanonicalState as S

        policy = DBNExpertPolicy(tiny_tables, seed=0)
        belief = np.zeros(9)
        belief[S.COMP] = 1.0
        assert policy._sample_mitigation(belief) is _T.REBOOT
        belief[:] = 0.0
        belief[S.COMP_RB] = 1.0
        assert policy._sample_mitigation(belief) is _T.RESET_PASSWORD
        belief[:] = 0.0
        belief[S.ADMIN_CRED] = 1.0
        assert policy._sample_mitigation(belief) is _T.REIMAGE
