"""Tests for the scenario registry (repro.make / repro.register)."""

import dataclasses

import pytest

import repro
from repro.config import paper_network
from repro.scenarios import (
    BUILTIN_SCENARIOS,
    REGISTRY,
    REWARD_VARIANTS,
    ScenarioSpec,
)


@pytest.fixture()
def scratch_id():
    """A scenario id cleaned out of the global registry after the test."""
    sid = "test-scratch-scenario-v1"
    yield sid
    REGISTRY.unregister(sid)


class TestSpecValidation:
    def test_rejects_unknown_network(self):
        with pytest.raises(ValueError, match="network preset"):
            ScenarioSpec(scenario_id="x", network="huge")

    def test_rejects_unknown_reward_variant(self):
        with pytest.raises(ValueError, match="reward variant"):
            ScenarioSpec(scenario_id="x", reward_variant="free_lunch")

    def test_rejects_half_fixed_qualitative_pair(self):
        with pytest.raises(ValueError, match="objective and vector"):
            ScenarioSpec(scenario_id="x", objective="destroy")

    def test_rejects_unknown_profile(self):
        with pytest.raises(ValueError, match="attacker profile"):
            ScenarioSpec(scenario_id="x", profile="apt9")

    def test_tags_normalized_to_tuple(self):
        spec = ScenarioSpec(scenario_id="x", tags=["a", "b"])
        assert spec.tags == ("a", "b")
        assert hash(spec)  # stays hashable

    def test_spec_is_frozen(self):
        spec = ScenarioSpec(scenario_id="x")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.network = "small"


class TestBuildConfig:
    def test_paper_flagship_matches_preset(self):
        config = repro.get_scenario("inasim-paper-v1").build_config()
        assert config == paper_network()

    def test_horizon_overrides_tmax(self):
        spec = ScenarioSpec(scenario_id="x", network="tiny", horizon=42)
        assert spec.build_config().tmax == 42

    def test_apt2_profile_tightens_thresholds(self):
        config = repro.get_scenario("paper-apt2-v1").build_config()
        assert config.apt.lateral_threshold == 1
        assert config.apt.plc_threshold_destroy == 5

    def test_reward_variants_applied(self):
        config = repro.get_scenario("paper-cost-sensitive-v1").build_config()
        assert config.reward == REWARD_VARIANTS["cost_sensitive"]

    def test_stealth_scenario_sets_cleanup(self):
        config = repro.get_scenario("paper-stealth-v1").build_config()
        assert config.apt.cleanup_effectiveness == 0.9

    def test_fig8_pair_fixed(self):
        config = repro.get_scenario("paper-destroy-hmi-v1").build_config()
        assert config.apt.objective == "destroy"
        assert config.apt.vector == "hmi"


class TestRegistry:
    def test_builtin_catalogue_size(self):
        assert len(repro.list_scenarios()) >= 10
        assert len(BUILTIN_SCENARIOS) == len(
            {s.scenario_id for s in BUILTIN_SCENARIOS}
        )

    def test_round_trip(self, scratch_id):
        spec = repro.register(
            scenario_id=scratch_id, network="tiny", tags=("custom",)
        )
        assert repro.get_scenario(scratch_id) is spec
        assert spec in repro.list_scenarios()
        env = repro.make(scratch_id, seed=0)
        assert env.scenario is spec

    def test_duplicate_id_rejected(self, scratch_id):
        repro.register(scenario_id=scratch_id, network="tiny")
        with pytest.raises(ValueError, match="already registered"):
            repro.register(scenario_id=scratch_id, network="small")

    def test_overwrite_allowed(self, scratch_id):
        repro.register(scenario_id=scratch_id, network="tiny")
        spec = repro.register(
            scenario_id=scratch_id, network="small", overwrite=True
        )
        assert repro.get_scenario(scratch_id).network == "small"
        assert spec is repro.get_scenario(scratch_id)

    def test_spec_and_fields_exclusive(self):
        with pytest.raises(TypeError):
            repro.register(ScenarioSpec(scenario_id="x"), network="tiny")

    def test_unknown_id_suggests_alternatives(self):
        with pytest.raises(KeyError, match="inasim-paper-v1"):
            repro.get_scenario("inasim-papr-v1")

    def test_tag_filter(self):
        fig8 = repro.list_scenarios(tag="fig8")
        assert len(fig8) == 4
        assert all("fig8" in s.tags for s in fig8)
        assert repro.list_scenarios(tag="no-such-tag") == []


class TestMake:
    def test_make_by_id(self):
        env = repro.make("inasim-tiny-v1", seed=0)
        obs = env.reset(seed=0)
        assert obs.t == 0
        assert env.scenario.scenario_id == "inasim-tiny-v1"

    def test_make_accepts_unregistered_spec(self):
        spec = ScenarioSpec(scenario_id="adhoc", network="tiny", horizon=30)
        env = repro.make(spec, seed=0)
        assert env.config.tmax == 30

    def test_make_overrides(self):
        env = repro.make("inasim-tiny-v1", seed=0, horizon=33)
        assert env.config.tmax == 33
        # the registered spec is untouched
        assert repro.get_scenario("inasim-tiny-v1").horizon is None

    def test_scripted_scenario_disrupts_plcs(self):
        env = repro.make("tiny-scripted-rush-v1", seed=3, horizon=120)
        env.reset(seed=3)
        done, info = False, {}
        while not done:
            _, _, done, info = env.step(None)
        assert info["n_plcs_disrupted"] > 0

    @pytest.mark.slow
    def test_make_env_shim_equivalent_to_flagship(self):
        """Paper-scale: repro.make_env(paper_network()) and
        repro.make("inasim-paper-v1") step identically."""
        legacy = repro.make_env(paper_network(), seed=11)
        named = repro.make("inasim-paper-v1", seed=11)
        legacy.reset(seed=11)
        named.reset(seed=11)
        for _ in range(25):
            _, r_a, d_a, info_a = legacy.step(None)
            _, r_b, d_b, info_b = named.step(None)
            assert (r_a, d_a, info_a["n_compromised"], info_a["apt_phase"]) == (
                r_b, d_b, info_b["n_compromised"], info_b["apt_phase"]
            )

    def test_make_vec_requires_positive_n(self):
        with pytest.raises(ValueError, match="num_envs"):
            repro.make_vec("inasim-tiny-v1", 0)


class TestAptOverrides:
    """The attacker-parameter bridge field on ScenarioSpec."""

    def test_applied_after_profile_and_stealth(self):
        spec = ScenarioSpec(
            scenario_id="x", network="tiny", profile="apt2",
            cleanup_effectiveness=0.9,
            apt_overrides={"lateral_threshold": 4, "labor_rate": 3,
                           "time_scale": 2.5},
        )
        apt = spec.build_config().apt
        assert apt.lateral_threshold == 4  # override beats the profile
        assert apt.labor_rate == 3
        assert apt.time_scale == 2.5
        assert apt.cleanup_effectiveness == 0.9

    def test_stored_sorted_and_hashable(self):
        a = ScenarioSpec(scenario_id="x",
                         apt_overrides={"labor_rate": 3, "hmi_threshold": 2})
        b = ScenarioSpec(scenario_id="x",
                         apt_overrides={"hmi_threshold": 2, "labor_rate": 3})
        assert a == b
        assert hash(a) == hash(b)
        assert a.apt_overrides == (("hmi_threshold", 2), ("labor_rate", 3))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown APTConfig fields"):
            ScenarioSpec(scenario_id="x", apt_overrides={"stealth": 1.0})

    def test_qualitative_fields_must_use_spec_fields(self):
        with pytest.raises(ValueError, match="spec's own fields"):
            ScenarioSpec(scenario_id="x",
                         apt_overrides={"objective": "disrupt"})
        with pytest.raises(ValueError, match="spec's own fields"):
            ScenarioSpec(scenario_id="x",
                         apt_overrides={"cleanup_effectiveness": 0.5})

    def test_invalid_values_caught_by_aptconfig(self):
        spec = ScenarioSpec(scenario_id="x",
                            apt_overrides={"time_scale": -1.0})
        with pytest.raises(ValueError, match="time_scale"):
            spec.build_config()

    def test_json_round_trip(self):
        from repro.scenarios import spec_from_json, spec_to_json

        spec = ScenarioSpec(
            scenario_id="x", network="small",
            apt_overrides={"plc_threshold_destroy": 7, "time_scale": 4.0},
        )
        clone = spec_from_json(spec_to_json(spec))
        assert clone == spec
        assert clone.build_config() == spec.build_config()


class TestSpecForConfig:
    """SimConfig -> ScenarioSpec reverse bridge."""

    def test_presets_round_trip(self):
        from repro.config import small_network, tiny_network
        from repro.scenarios import spec_for_config

        for factory in (paper_network, small_network, tiny_network):
            config = factory()
            spec = spec_for_config(config, "bridge")
            assert spec.build_config() == config

    def test_tmax_and_attacker_deviations_carry(self):
        from dataclasses import replace

        from repro.config import small_network
        from repro.scenarios import spec_for_config

        config = small_network(tmax=600)
        config = config.with_apt(replace(config.apt, time_scale=4.0,
                                         cleanup_effectiveness=0.8))
        spec = spec_for_config(config, "bridge")
        assert spec.horizon == 600
        assert spec.cleanup_effectiveness == 0.8
        assert dict(spec.apt_overrides) == {"time_scale": 4.0}
        assert spec.build_config() == config

    def test_deviating_qualitative_pair_is_pinned(self):
        """A config whose (objective, vector) deviates from the preset
        was chosen deliberately — the bridge must honour it instead of
        silently reverting to the sampled default."""
        from dataclasses import replace

        from repro.config import small_network
        from repro.scenarios import spec_for_config

        config = small_network()
        config = config.with_apt(replace(config.apt, objective="disrupt",
                                         vector="hmi"))
        spec = spec_for_config(config, "bridge")
        assert (spec.objective, spec.vector) == ("disrupt", "hmi")
        assert not spec.sample_qualitative
        assert spec.build_config() == config
        # the default pair stays sampled, matching make_env defaults
        assert spec_for_config(small_network(), "bridge").sample_qualitative

    def test_reward_variant_matched(self):
        from repro.scenarios import spec_for_config

        config = paper_network(reward=REWARD_VARIANTS["cost_sensitive"])
        spec = spec_for_config(config, "bridge")
        assert spec.reward_variant == "cost_sensitive"
        assert spec.build_config() == config

    def test_unexpressible_configs_rejected(self):
        from dataclasses import replace

        from repro.config import RewardConfig, TopologyConfig, tiny_network
        from repro.scenarios import spec_for_config

        custom_topo = replace(tiny_network(),
                              topology=TopologyConfig(plcs=13))
        with pytest.raises(ValueError, match="network preset"):
            spec_for_config(custom_topo, "bridge")
        custom_reward = replace(tiny_network(),
                                reward=RewardConfig(lambda_it=0.7))
        with pytest.raises(ValueError, match="reward variant"):
            spec_for_config(custom_reward, "bridge")
