"""Tests for APT action execution semantics."""

import numpy as np
import pytest

from repro.config import APTConfig, tiny_network
from repro.net import Condition, ServerRole, build_topology
from repro.net.topology import L1_OPS, L2_OPS, L2_QUAR
from repro.sim.apt_actions import (
    APT_ACTION_SPECS,
    APTActionRequest,
    APTActionType,
    APTKnowledge,
    apply_apt_action,
    sample_duration,
)
from repro.sim.state import NetworkState

_A = APTActionType


@pytest.fixture()
def topo():
    return build_topology(tiny_network().topology)


@pytest.fixture()
def state(topo):
    return NetworkState(topo)


@pytest.fixture()
def know():
    return APTKnowledge()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def apt_cfg():
    return APTConfig()


def _beachhead(state, know, node=0):
    state.set_condition(node, Condition.SCANNED)
    state.set_condition(node, Condition.COMPROMISED)
    know.known_vlan[node] = state.node_vlan[node]
    return node


def _apply(req, state, know, topo, cfg, rng):
    return apply_apt_action(req, state, know, topo, cfg, rng)


class TestSampleDuration:
    def test_at_least_one_hour(self, rng):
        spec = APT_ACTION_SPECS[_A.FLASH_FIRMWARE]
        assert sample_duration(spec, rng) == 1

    def test_time_scale_shortens(self, rng):
        spec = APT_ACTION_SPECS[_A.SCAN_VLAN]
        base = [sample_duration(spec, np.random.default_rng(i)) for i in range(50)]
        fast = [sample_duration(spec, np.random.default_rng(i), 10.0) for i in range(50)]
        assert np.mean(fast) < np.mean(base)
        assert min(fast) >= 1

    def test_mean_close_to_np(self, rng):
        spec = APT_ACTION_SPECS[_A.COMPROMISE]
        samples = [sample_duration(spec, rng) for _ in range(300)]
        assert np.mean(samples) == pytest.approx(60 * 0.8, rel=0.1)


class TestScanVlan:
    def test_marks_nodes_scanned(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        req = APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L2_OPS)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        for node_id in topo.nodes_in_vlan(L2_OPS, state.node_vlan):
            assert state.has_condition(node_id, Condition.SCANNED)
        assert L2_OPS in know.scanned_vlans

    def test_fails_without_compromised_source(self, state, know, topo, apt_cfg, rng):
        req = APTActionRequest(_A.SCAN_VLAN, 0, target_vlan=L2_OPS)
        assert not _apply(req, state, know, topo, apt_cfg, rng)

    def test_fails_from_quarantined_source(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        state.move_node(src, L2_QUAR)
        req = APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L2_OPS)
        assert not _apply(req, state, know, topo, apt_cfg, rng)


class TestCompromise:
    def test_succeeds_on_scanned_known_node(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        _apply(APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L2_OPS),
               state, know, topo, apt_cfg, rng)
        target = 1
        req = APTActionRequest(_A.COMPROMISE, src, target_node=target)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        assert state.is_compromised(target)

    def test_fails_on_unscanned_node(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        req = APTActionRequest(_A.COMPROMISE, src, target_node=1)
        assert not _apply(req, state, know, topo, apt_cfg, rng)

    def test_fails_when_node_moved_since_scan(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        _apply(APTActionRequest(_A.SCAN_VLAN, src, target_vlan=L2_OPS),
               state, know, topo, apt_cfg, rng)
        state.move_node(1, L2_QUAR)  # defender quarantines before completion
        req = APTActionRequest(_A.COMPROMISE, src, target_node=1)
        assert not _apply(req, state, know, topo, apt_cfg, rng)
        assert not state.is_compromised(1)


class TestNodeHardening:
    @pytest.mark.parametrize(
        "atype, cond, needs_admin",
        [
            (_A.REBOOT_PERSIST, Condition.REBOOT_PERSIST, False),
            (_A.ESCALATE, Condition.ADMIN, False),
            (_A.CRED_PERSIST, Condition.CRED_PERSIST, True),
            (_A.CLEANUP, Condition.CLEANED, True),
        ],
    )
    def test_ladder(self, state, know, topo, apt_cfg, rng, atype, cond, needs_admin):
        node = _beachhead(state, know)
        if needs_admin:
            state.set_condition(node, Condition.ADMIN)
        req = APTActionRequest(atype, node, target_node=node)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        assert state.has_condition(node, cond)

    def test_cred_persist_without_admin_fails(self, state, know, topo, apt_cfg, rng):
        node = _beachhead(state, know)
        req = APTActionRequest(_A.CRED_PERSIST, node, target_node=node)
        assert not _apply(req, state, know, topo, apt_cfg, rng)


class TestDiscovery:
    def test_discover_vlan(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        assert _apply(APTActionRequest(_A.DISCOVER_VLAN, src), state, know,
                      topo, apt_cfg, rng)
        assert set(topo.ops_vlans()) <= know.discovered_vlans

    def test_discover_server_finds_servers_only(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        req = APTActionRequest(_A.DISCOVER_SERVER, src, target_vlan=L2_OPS)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        servers = {n.node_id for n in topo.nodes if n.is_server}
        assert know.discovered_servers == servers

    def test_discover_plc_batches(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)
        req = APTActionRequest(_A.DISCOVER_PLC, src, target_vlan=L1_OPS)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        assert 0 < len(know.discovered_plcs) <= apt_cfg.plcs_per_discovery
        # repeating eventually discovers everything
        for _ in range(10):
            _apply(req, state, know, topo, apt_cfg, rng)
        assert len(know.discovered_plcs) == topo.n_plcs

    def test_analyze_historian_requires_admin(self, state, know, topo, apt_cfg, rng):
        historian = topo.server(ServerRole.HISTORIAN).node_id
        req = APTActionRequest(_A.ANALYZE_HISTORIAN, historian, target_node=historian)
        assert not _apply(req, state, know, topo, apt_cfg, rng)
        _beachhead(state, know, historian)
        state.set_condition(historian, Condition.ADMIN)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        assert know.historian_analyzed


class TestPLCAttacks:
    def _armed_source(self, state, know, topo):
        opc = topo.server(ServerRole.OPC).node_id
        _beachhead(state, know, opc)
        state.set_condition(opc, Condition.ADMIN)
        return opc

    def test_disrupt(self, state, know, topo, apt_cfg, rng):
        src = self._armed_source(state, know, topo)
        req = APTActionRequest(_A.DISRUPT_PLC, src, target_plc=0)
        assert _apply(req, state, know, topo, apt_cfg, rng)
        assert state.plc_disrupted[0]

    def test_destroy_requires_firmware(self, state, know, topo, apt_cfg, rng):
        src = self._armed_source(state, know, topo)
        destroy = APTActionRequest(_A.DESTROY_PLC, src, target_plc=0)
        assert not _apply(destroy, state, know, topo, apt_cfg, rng)
        flash = APTActionRequest(_A.FLASH_FIRMWARE, src, target_plc=0)
        assert _apply(flash, state, know, topo, apt_cfg, rng)
        assert _apply(destroy, state, know, topo, apt_cfg, rng)
        assert state.plc_destroyed[0]

    def test_attack_requires_admin(self, state, know, topo, apt_cfg, rng):
        src = _beachhead(state, know)  # compromised but not admin
        req = APTActionRequest(_A.DISRUPT_PLC, src, target_plc=0)
        assert not _apply(req, state, know, topo, apt_cfg, rng)

    def test_destroyed_plc_cannot_be_redisrupted(self, state, know, topo, apt_cfg, rng):
        src = self._armed_source(state, know, topo)
        state.plc_destroyed[0] = True
        req = APTActionRequest(_A.DISRUPT_PLC, src, target_plc=0)
        assert not _apply(req, state, know, topo, apt_cfg, rng)
