"""Tests for the FSM attacker: phase sequences, criteria, reversion."""

import numpy as np
import pytest

import repro
from repro.attacker import FSMAttacker, Phase, apt1, apt2
from repro.attacker.fsm import phase_sequence
from repro.config import APTConfig, tiny_network


class TestPhaseSequence:
    def test_destroy_opc(self):
        seq = phase_sequence("destroy", "opc")
        assert seq == [
            Phase.LATERAL_MOVEMENT_L2, Phase.PROCESS_DISCOVERY,
            Phase.NETWORK_DISCOVERY, Phase.OPC_COMPROMISE,
            Phase.PLC_DISCOVERY, Phase.FIRMWARE_COMPROMISE, Phase.EXECUTE,
        ]

    def test_disrupt_skips_firmware(self):
        assert Phase.FIRMWARE_COMPROMISE not in phase_sequence("disrupt", "opc")

    def test_hmi_vector_captures_hmis(self):
        seq = phase_sequence("disrupt", "hmi")
        assert Phase.HMI_CAPTURE in seq
        assert Phase.LATERAL_MOVEMENT_L1 in seq
        assert Phase.OPC_COMPROMISE not in seq

    def test_all_four_configs_end_with_execute(self):
        for objective in ("disrupt", "destroy"):
            for vector in ("opc", "hmi"):
                assert phase_sequence(objective, vector)[-1] is Phase.EXECUTE


class TestQualitativeSampling:
    def test_sampling_covers_configs(self):
        attacker = FSMAttacker(APTConfig(), sample_qualitative=True)
        seen = set()
        for seed in range(30):
            attacker.reset(np.random.default_rng(seed))
            seen.add((attacker.objective, attacker.vector))
        assert len(seen) == 4

    def test_fixed_config_respected(self):
        attacker = FSMAttacker(
            APTConfig(objective="disrupt", vector="hmi"), sample_qualitative=False
        )
        attacker.reset(np.random.default_rng(0))
        assert (attacker.objective, attacker.vector) == ("disrupt", "hmi")

    def test_plc_threshold_switches_with_objective(self):
        attacker = FSMAttacker(APTConfig(), sample_qualitative=False)
        attacker.objective = "destroy"
        assert attacker.plc_threshold == 15
        attacker.objective = "disrupt"
        assert attacker.plc_threshold == 25


@pytest.mark.parametrize("objective,vector", [
    ("destroy", "opc"), ("disrupt", "opc"), ("destroy", "hmi"), ("disrupt", "hmi"),
])
def test_full_attack_completes(objective, vector):
    """Every FSM configuration reaches its goal against a passive defender."""
    cfg = tiny_network(tmax=400)
    attacker = FSMAttacker(
        APTConfig(
            objective=objective, vector=vector, lateral_threshold=2,
            hmi_threshold=1, plc_threshold_destroy=2, plc_threshold_disrupt=2,
            time_scale=10.0,
        ),
        sample_qualitative=False,
    )
    env = repro.make_env(cfg, seed=0, attacker=attacker)
    env.reset(seed=2)
    phases = set()
    done, info = False, {}
    while not done:
        _, _, done, info = env.step(None)
        phases.add(info["apt_phase"])
    assert info["n_plcs_offline"] >= 2
    if objective == "destroy":
        assert info["n_plcs_destroyed"] >= 2
        assert "firmware_compromise" in phases
    else:
        assert info["n_plcs_destroyed"] == 0
    assert "done" in phases


class TestReversion:
    def test_cleaning_nodes_reverts_phase(self):
        """Re-imaging compromised nodes pushes the FSM back to lateral
        movement (the Fig 3 reversion rule)."""
        cfg = tiny_network(tmax=400)
        attacker = FSMAttacker(cfg.apt, sample_qualitative=False)
        env = repro.make_env(cfg, seed=0, attacker=attacker)
        env.reset(seed=5)
        # let the attack progress beyond lateral movement
        for _ in range(120):
            _, _, _, info = env.step(None)
        assert info["apt_phase"] != "lateral_movement_l2"
        # defender wipes every compromised node
        state = env.sim.state
        for node_id in np.flatnonzero(state.compromised_mask()):
            state.clear_node(int(node_id))
        _, _, _, info = env.step(None)
        assert info["apt_phase"] == "lateral_movement_l2"

    def test_plc_repair_triggers_reattack(self):
        cfg = tiny_network(tmax=500)
        attacker = FSMAttacker(
            APTConfig(objective="disrupt", vector="opc", lateral_threshold=2,
                      hmi_threshold=1, plc_threshold_disrupt=2, time_scale=10.0),
            sample_qualitative=False,
        )
        env = repro.make_env(cfg, seed=0, attacker=attacker)
        env.reset(seed=2)
        done, info = False, {}
        while not done and env.sim.state.n_plcs_offline() < 2:
            _, _, done, info = env.step(None)
        assert env.sim.state.n_plcs_offline() >= 2
        # repair all PLCs; the EXECUTE criteria is no longer met
        env.sim.state.plc_disrupted[:] = False
        _, _, _, info = env.step(None)
        assert info["apt_phase"] in ("execute", "plc_discovery")


class TestProfiles:
    def test_apt2_is_more_aggressive(self):
        a1, a2 = apt1(), apt2()
        assert a2.lateral_threshold < a1.lateral_threshold
        assert a2.plc_threshold_destroy < a1.plc_threshold_destroy
        assert a2.plc_threshold_disrupt < a1.plc_threshold_disrupt

    def test_apt2_attacks_sooner(self):
        """APT2 should reach the execute phase earlier than APT1."""
        def first_execute_time(apt_cfg, seed=3):
            cfg = tiny_network(tmax=400).with_apt(apt_cfg)
            attacker = FSMAttacker(apt_cfg, sample_qualitative=False)
            env = repro.make_env(cfg, seed=seed, attacker=attacker)
            env.reset(seed=seed)
            done = False
            while not done:
                _, _, done, info = env.step(None)
                if info["apt_phase"] in ("execute", "done"):
                    return info["t"]
            return cfg.tmax

        base = dict(objective="disrupt", vector="opc", time_scale=10.0)
        t1 = first_execute_time(apt1(**base))
        t2 = first_execute_time(apt2(**base))
        assert t2 < t1

    def test_cleanup_override(self):
        from repro.attacker import with_cleanup_effectiveness

        cfg = with_cleanup_effectiveness(apt1(), 0.9)
        assert cfg.cleanup_effectiveness == 0.9
        assert apt1().cleanup_effectiveness == 0.5
