"""Drop-in and serialization contracts for the Q-network family.

Every network variant (plain, dueling, distributional, noisy-headed)
must (a) serialize and reload bit-exactly, (b) plug into the greedy
ACSO policy unchanged, and (c) keep its parameter count independent of
the bound topology. These are the contracts the transfer and
self-play machinery silently rely on.
"""

import numpy as np
import pytest

import repro
from repro.config import small_network, tiny_network
from repro.defenders.acso import ACSOPolicy
from repro.eval import run_episode
from repro.net.topology import build_topology
from repro.nn import load_state, save_state
from repro.rl import (
    AttentionQNetwork,
    C51Config,
    DistributionalAttentionQNetwork,
    DuelingAttentionQNetwork,
    QNetConfig,
)

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)
NOISY_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16, noisy_heads=True)


def _variants():
    return [
        ("plain", AttentionQNetwork(SMALL_QNET, seed=0)),
        ("dueling", DuelingAttentionQNetwork(SMALL_QNET, seed=0)),
        ("distributional", DistributionalAttentionQNetwork(
            SMALL_QNET, seed=0, c51=C51Config(n_atoms=7))),
        ("noisy", AttentionQNetwork(NOISY_QNET, seed=0)),
    ]


class TestSerialization:
    @pytest.mark.parametrize("name,net", _variants(),
                             ids=[n for n, _ in _variants()])
    def test_state_roundtrip(self, tmp_path, name, net):
        path = tmp_path / f"{name}.npz"
        save_state(net, path)
        fresh = net.clone(seed=99)
        load_state(fresh, path)
        for key, value in net.state_dict().items():
            assert np.array_equal(fresh.state_dict()[key], value), key

    @pytest.mark.parametrize("name,net", _variants(),
                             ids=[n for n, _ in _variants()])
    def test_loaded_network_predicts_identically(self, tmp_path, name, net):
        topo = build_topology(tiny_network().topology)
        net.bind_topology(topo)
        path = tmp_path / f"{name}.npz"
        save_state(net, path)
        fresh = net.clone(seed=99)
        load_state(fresh, path)
        fresh.bind_topology(topo)
        if hasattr(net, "set_noise_enabled"):
            net.set_noise_enabled(False)
            fresh.set_noise_enabled(False)
        rng = np.random.default_rng(0)
        from repro.rl.features import (
            GLOBAL_FEATURE_DIM,
            NODE_FEATURE_DIM,
            PLC_FEATURE_DIM,
        )

        node = rng.random((1, topo.n_nodes, NODE_FEATURE_DIM))
        plc = rng.random((1, topo.n_plcs, PLC_FEATURE_DIM))
        glob = rng.random((1, GLOBAL_FEATURE_DIM))
        from repro.nn import no_grad

        with no_grad():
            assert np.allclose(
                net.forward(node, plc, glob).data,
                fresh.forward(node, plc, glob).data,
            )


class TestDropInPolicy:
    @pytest.mark.parametrize("name,net", _variants(),
                             ids=[n for n, _ in _variants()])
    def test_acso_policy_accepts_every_variant(self, tiny_tables, name, net):
        env = repro.make_env(tiny_network(tmax=15), seed=0)
        policy = ACSOPolicy(net, tiny_tables)
        metrics = run_episode(env, policy, seed=0, max_steps=15)
        assert np.isfinite(metrics.discounted_return)


class TestSizeInvariance:
    @pytest.mark.parametrize("name,net", _variants(),
                             ids=[n for n, _ in _variants()])
    def test_parameter_count_constant_across_topologies(self, name, net):
        net.bind_topology(build_topology(tiny_network().topology))
        count = net.n_parameters()
        net.bind_topology(build_topology(small_network().topology))
        assert net.n_parameters() == count

    def test_clone_has_same_shape_different_weights(self):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        clone = net.clone(seed=1)
        assert clone.n_parameters() == net.n_parameters()
        same = all(
            np.array_equal(a, clone.state_dict()[k])
            for k, a in net.state_dict().items()
        )
        assert not same  # different seeds must re-initialize
