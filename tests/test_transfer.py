"""Tests for cross-network transfer: weight portability, the study
protocol, and the size-invariance contract."""

import numpy as np
import pytest

from repro.config import TopologyConfig, SimConfig, small_network, tiny_network
from repro.net.topology import build_topology
from repro.rl import AttentionQNetwork, DQNConfig, QNetConfig
from repro.transfer import (
    evaluate_greedy_policy,
    run_transfer_study,
    train_policy,
)

SMALL_QNET = QNetConfig(d_model=8, n_heads=2, encoder_hidden=16,
                        encoder_layers=2, head_hidden=16)
FAST_DQN = DQNConfig(batch_size=8, warmup=8, update_every=4,
                     target_update=50, buffer_size=500, n_step=3)


def _other_tiny() -> SimConfig:
    """A second tiny topology, different node counts from tiny_network."""
    cfg = tiny_network(tmax=40)
    topo = TopologyConfig(
        l2_workstations=4, l2_servers=("opc", "historian"), l1_hmis=2, plcs=6
    )
    return SimConfig(topology=topo, apt=cfg.apt, tmax=40)


class TestWeightPortability:
    def test_state_dict_survives_rebinding(self):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        t1 = build_topology(tiny_network().topology)
        t2 = build_topology(_other_tiny().topology)
        net.bind_topology(t1)
        before = net.state_dict()
        net.bind_topology(t2)
        after = net.state_dict()
        assert before.keys() == after.keys()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_action_list_tracks_topology(self):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        n1 = net.bind_topology(build_topology(tiny_network().topology)).n_actions
        n2 = net.bind_topology(build_topology(_other_tiny().topology)).n_actions
        assert n1 != n2

    def test_parameter_count_invariant(self):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        net.bind_topology(build_topology(tiny_network().topology))
        n_params = net.n_parameters()
        net.bind_topology(build_topology(small_network().topology))
        assert net.n_parameters() == n_params

    def test_transferred_policy_runs_on_target(self, tiny_tables):
        """Weights trained nowhere still act on a never-seen topology."""
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        result = evaluate_greedy_policy(
            _other_tiny(), net, tiny_tables, episodes=1, max_steps=20
        )
        assert np.isfinite(result.mean("discounted_return"))


class TestTrainPolicy:
    def test_training_produces_history(self, tiny_tables):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        history = train_policy(
            tiny_network(tmax=30), net, tiny_tables, FAST_DQN,
            episodes=2, max_steps=20,
        )
        assert len(history) == 2
        assert all(h.steps == 20 for h in history)

    def test_training_changes_weights(self, tiny_tables):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        before = {k: v.copy() for k, v in net.state_dict().items()}
        train_policy(tiny_network(tmax=30), net, tiny_tables, FAST_DQN,
                     episodes=1, max_steps=30)
        after = net.state_dict()
        assert any(
            not np.array_equal(before[k], after[k]) for k in before
        )


class TestTransferStudy:
    def test_full_protocol_structure(self, tiny_tables):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        study = run_transfer_study(
            source_config=tiny_network(tmax=30),
            target_config=_other_tiny(),
            qnet=net,
            tables=tiny_tables,
            dqn_config=FAST_DQN,
            pretrain_episodes=1,
            finetune_episodes=1,
            eval_episodes=1,
            max_steps=20,
        )
        for aggregate in (study.source, study.zero_shot, study.finetuned,
                          study.scratch):
            assert aggregate is not None
            assert np.isfinite(aggregate.mean("discounted_return"))
        assert len(study.finetune_history) == 1
        assert len(study.scratch_history) == 1
        assert study.n_parameters == net.n_parameters()

    def test_zero_budget_skips_finetune(self, tiny_tables):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        study = run_transfer_study(
            source_config=tiny_network(tmax=20),
            target_config=_other_tiny(),
            qnet=net,
            tables=tiny_tables,
            dqn_config=FAST_DQN,
            pretrain_episodes=0,
            finetune_episodes=0,
            eval_episodes=1,
            max_steps=15,
        )
        assert study.finetuned is None
        assert study.scratch is None
        assert study.finetune_history == []

    def test_pretrain_zero_keeps_weights(self, tiny_tables):
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        before = {k: v.copy() for k, v in net.state_dict().items()}
        run_transfer_study(
            source_config=tiny_network(tmax=20),
            target_config=_other_tiny(),
            qnet=net,
            tables=tiny_tables,
            pretrain_episodes=0,
            finetune_episodes=0,
            eval_episodes=1,
            max_steps=10,
        )
        after = net.state_dict()
        for key in before:
            assert np.array_equal(before[key], after[key])

    def test_identical_eval_seeds_make_columns_comparable(self, tiny_tables):
        """Zero-shot and fine-tuned rows share evaluation seeds, so a
        do-nothing fine-tune would reproduce the zero-shot numbers."""
        net = AttentionQNetwork(SMALL_QNET, seed=0)
        study = run_transfer_study(
            source_config=tiny_network(tmax=20),
            target_config=_other_tiny(),
            qnet=net,
            tables=tiny_tables,
            dqn_config=FAST_DQN,
            pretrain_episodes=0,
            finetune_episodes=0,
            eval_episodes=2,
            max_steps=15,
        )
        again = evaluate_greedy_policy(
            _other_tiny(), net, tiny_tables, episodes=2, seed=200,
            max_steps=15,
        )
        assert study.zero_shot.mean("discounted_return") == pytest.approx(
            again.mean("discounted_return")
        )
