"""Experiment E4: DBN filter validation (paper Section 4.3).

The paper validates its filter by "measuring the maximum KL divergence
of the DBN belief and the true state over many episodes". This bench
reports max/mean KL and argmax accuracy of the fitted filter on
held-out episodes, plus the per-step filter update latency (the filter
runs inside every ACSO decision, so it must be fast).
"""

from __future__ import annotations

import numpy as np

import repro
from benchmarks.conftest import episodes_per_cell, write_result
from repro.defenders import SemiRandomPolicy
from repro.dbn import DBNFilter, validate_dbn


def test_dbn_validation(benchmark, eval_config, eval_tables):
    episodes = episodes_per_cell(2)

    def run():
        return validate_dbn(
            lambda: repro.make_env(eval_config),
            lambda: SemiRandomPolicy(rate=5.0),
            eval_tables,
            episodes=episodes,
            seed=900,
            max_steps=2000,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"DBN validation ({episodes} held-out episodes, 2000 steps each)\n"
        f"max KL(truth || belief): {result.max_kl:.3f}\n"
        f"mean KL per node-step:   {result.mean_kl:.4f}\n"
        f"argmax accuracy:         {result.accuracy:.3f}\n"
        f"node-steps scored:       {result.steps}"
    )
    write_result("dbn_validation.txt", text)
    assert result.accuracy > 0.5
    assert np.isfinite(result.max_kl)


def test_dbn_update_latency(benchmark, eval_config, eval_tables):
    """Single-step filter update on the full 33-node network."""
    env = repro.make_env(eval_config, seed=0)
    obs = env.reset(seed=0)
    dbn = DBNFilter(eval_tables, env.topology)
    obs, *_ = env.step(None)

    benchmark(dbn.update, obs)
    assert np.allclose(dbn.beliefs.sum(axis=1), 1.0)
