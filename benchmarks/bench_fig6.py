"""Experiment E2: Fig 6 -- robustness to APT cleanup effectiveness.

Sweeps the attacker's cleanup effectiveness (nominal training value:
0.5) and reports (a) final PLCs offline and (b) average level 2/1
nodes compromised for each policy. In the paper, rule-triggered
defenses (the playbook) degrade sharply as effectiveness rises because
their scans stop detecting cleaned malware, while the belief-based
policies degrade more gracefully.
"""

from __future__ import annotations

import os

from benchmarks.conftest import episodes_per_cell, write_result
from repro.eval import format_sweep_table, run_fig6, series_plot

EFFECTIVENESS = (0.1, 0.5, 0.9)
if os.environ.get("REPRO_BENCH_FULL"):
    EFFECTIVENESS = (0.1, 0.3, 0.5, 0.7, 0.9)


def test_fig6_cleanup_effectiveness(benchmark, eval_config, policy_suite):
    episodes = episodes_per_cell(2)

    def run():
        return run_fig6(
            eval_config,
            policy_suite,
            effectiveness_values=EFFECTIVENESS,
            episodes=episodes,
            seed=100,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    text_a = format_sweep_table(
        sweep,
        "final_plcs_offline",
        "cleanup eff.",
        title=f"Fig 6a: final PLCs offline ({episodes} episodes/cell)",
    )
    text_b = format_sweep_table(
        sweep,
        "avg_nodes_compromised",
        "cleanup eff.",
        title=f"Fig 6b: avg L2/L1 nodes compromised ({episodes} episodes/cell)",
    )
    charts = "\n\n".join(
        series_plot(
            list(sweep),
            {
                name: [sweep[x][name].mean(metric) for x in sweep]
                for name in policy_suite
            },
            title=title,
            height=10,
            width=48,
        )
        for metric, title in (
            ("final_plcs_offline", "Fig 6a (chart): PLCs offline"),
            ("avg_nodes_compromised", "Fig 6b (chart): nodes compromised"),
        )
    )
    write_result("fig6.txt", text_a + "\n\n" + text_b + "\n\n" + charts)

    # shape: higher cleanup effectiveness never helps the defender
    for name in policy_suite:
        low = sweep[EFFECTIVENESS[0]][name].mean("avg_nodes_compromised")
        high = sweep[EFFECTIVENESS[-1]][name].mean("avg_nodes_compromised")
        assert high >= low - 1.0
