"""Experiment E6: shaping-reward ablation (paper Section 4.2).

The paper grid-searched the shaping weight over {0, 1, 1/(1-gamma)}
and reports that the shaping reward "was critical to enable the agent
to learn a meaningful policy" -- without it, the task reward is too
sparse over 5,000-step episodes.

This bench runs short DQN trainings with and without shaping on the
grid-search network and compares the density of the learning signal:
the variance of stored training rewards (with shaping weight 0 nearly
every step pays the same constant, so TD errors carry no information
about compromise events) and the resulting episode returns.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

import repro
from benchmarks.conftest import write_result
from repro.config import small_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    DQNConfig,
    DQNTrainer,
    QNetConfig,
)


def _training_env():
    cfg = small_network(tmax=400)
    return cfg.with_apt(replace(cfg.apt, time_scale=4.0))


def _train(shaping_weight, tables, episodes=2, seed=0):
    cfg = _training_env()
    env = repro.make_env(cfg, seed=seed)
    qnet = AttentionQNetwork(QNetConfig(), seed=seed)
    featurizer = ACSOFeaturizer(env.topology, tables)
    dqn_cfg = DQNConfig(
        warmup=128,
        batch_size=32,
        update_every=8,
        target_update=200,
        eps_decay=0.995,
        seed=seed,
        shaping_weight=shaping_weight,
    )
    trainer = DQNTrainer(env, qnet, featurizer, dqn_cfg)
    history = trainer.train(episodes=episodes, seed=seed + 10)
    rewards = [trainer.replay._data[i].reward for i in range(len(trainer.replay))]
    return history, np.array(rewards)


def test_shaping_signal_density(benchmark, eval_config):
    cfg = _training_env()
    tables = fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=3,
        seed=40,
        max_steps=400,
    )

    def run():
        history_off, rewards_off = _train(0.0, tables, seed=1)
        history_on, rewards_on = _train(None, tables, seed=1)  # paper default
        return history_off, rewards_off, history_on, rewards_on

    history_off, rewards_off, history_on, rewards_on = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    text = (
        "Shaping ablation (grid values 0 vs 1/(1-gamma); 2 episodes each)\n"
        f"reward std  without shaping: {rewards_off.std():.6f}\n"
        f"reward std  with shaping:    {rewards_on.std():.6f}\n"
        f"env return  without shaping: {history_off[-1].env_return:.1f}\n"
        f"env return  with shaping:    {history_on[-1].env_return:.1f}"
    )
    write_result("shaping_ablation.txt", text)

    # the shaped reward stream must carry a denser learning signal
    assert rewards_on.std() > rewards_off.std()
