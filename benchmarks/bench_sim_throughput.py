"""Experiment E5: simulator throughput.

Section 3.1 claims INASIM runs "high-level simulations of APT attacks
... in super-real time". One simulated step is one hour, so anything
above ~0.3 steps/s beats the wall clock by orders of magnitude; this
bench measures steps/second on the three network presets with a
passive defender and with the alert-heavy playbook defender.
"""

from __future__ import annotations

import pytest

import repro
from repro.config import paper_network, small_network, tiny_network
from repro.defenders import PlaybookPolicy

_PRESETS = {
    "tiny": tiny_network,
    "small": small_network,
    "paper": paper_network,
}


@pytest.mark.parametrize("preset", list(_PRESETS))
def test_sim_steps_noop(benchmark, preset):
    env = repro.make_env(_PRESETS[preset]())
    env.reset(seed=0)

    def run_chunk():
        for _ in range(200):
            env.step(None)

    benchmark.pedantic(
        run_chunk, rounds=3, iterations=1, setup=lambda: (env.reset(seed=0), None)[1]
    )


def test_sim_steps_with_playbook(benchmark):
    env = repro.make_env(paper_network())
    policy = PlaybookPolicy()

    def run_chunk():
        obs = env.reset(seed=0)
        policy.reset(env)
        for _ in range(200):
            obs, _, _, _ = env.step(policy.act(obs))

    benchmark.pedantic(run_chunk, rounds=3, iterations=1)
