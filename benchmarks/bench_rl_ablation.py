"""Experiment E9 (extension): Rainbow-component ablation.

The paper adopts double DQN, prioritized replay, and n-step TD (Section
4.2) without ablating them individually, and leaves the remaining
Rainbow components (dueling heads, noisy-net exploration, distributional
learning) untried. This bench trains each variant for a short budget on
the tiny network with a time-scaled attacker and reports training-signal
statistics: final-episode shaped return, mean TD loss, and wall time.

With CI budgets these runs are far too short for policy-quality claims;
the bench verifies every variant *trains* (finite, decreasing loss) and
records the relative step cost of each component. Set REPRO_EPISODES
higher and extend max_steps for a real comparison.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

import repro
from benchmarks.conftest import episodes_per_cell, write_result
from repro.config import tiny_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import (
    ACSOFeaturizer,
    AttentionQNetwork,
    C51Config,
    C51Trainer,
    DQNConfig,
    DQNTrainer,
    DistributionalAttentionQNetwork,
    DuelingAttentionQNetwork,
    QNetConfig,
)

_QNET = QNetConfig(d_model=16, n_heads=2, encoder_hidden=32, head_hidden=32)
_BASE = dict(
    batch_size=16,
    warmup=32,
    update_every=4,
    target_update=100,
    eps_decay=0.995,
    buffer_size=5_000,
    n_step=8,
)


def _env(seed=0):
    cfg = tiny_network(tmax=150)
    return repro.make_env(cfg.with_apt(replace(cfg.apt, time_scale=10.0)), seed=seed)


def _variants():
    """(name, qnet factory, trainer factory, DQNConfig) per ablation."""
    return [
        (
            "paper (double+PER+n8)",
            lambda: AttentionQNetwork(_QNET, seed=0),
            DQNTrainer,
            DQNConfig(**_BASE),
        ),
        (
            "no double DQN",
            lambda: AttentionQNetwork(_QNET, seed=0),
            DQNTrainer,
            DQNConfig(**{**_BASE, "double_dqn": False}),
        ),
        (
            "uniform replay",
            lambda: AttentionQNetwork(_QNET, seed=0),
            DQNTrainer,
            DQNConfig(**{**_BASE, "prioritized": False}),
        ),
        (
            "1-step TD",
            lambda: AttentionQNetwork(_QNET, seed=0),
            DQNTrainer,
            DQNConfig(**{**_BASE, "n_step": 1}),
        ),
        (
            "+dueling",
            lambda: DuelingAttentionQNetwork(_QNET, seed=0),
            DQNTrainer,
            DQNConfig(**_BASE),
        ),
        (
            "+noisy nets",
            lambda: AttentionQNetwork(replace(_QNET, noisy_heads=True), seed=0),
            DQNTrainer,
            DQNConfig(**{**_BASE, "noisy": True}),
        ),
        (
            "+C51",
            lambda: DistributionalAttentionQNetwork(
                _QNET, seed=0, c51=C51Config(n_atoms=21)
            ),
            C51Trainer,
            DQNConfig(**_BASE),
        ),
    ]


@pytest.fixture(scope="module")
def ablation_tables():
    cfg = tiny_network(tmax=150)
    return fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=3.0),
        episodes=4,
        seed=11,
        max_steps=150,
    )


def test_rainbow_component_ablation(benchmark, ablation_tables):
    episodes = episodes_per_cell(2)
    max_steps = 120

    def run():
        rows = []
        for name, qnet_factory, trainer_cls, cfg in _variants():
            env = _env(seed=3)
            featurizer = ACSOFeaturizer(env.topology, ablation_tables)
            trainer = trainer_cls(env, qnet_factory(), featurizer, cfg)
            history = trainer.train(episodes=episodes, seed=20, max_steps=max_steps)
            losses = [h.mean_loss for h in history if h.mean_loss > 0]
            rows.append((
                name,
                history[-1].env_return,
                float(np.mean(losses)) if losses else float("nan"),
                trainer.total_steps,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Rainbow component ablation "
        f"({episodes} episodes x {max_steps} steps, tiny network)",
        f"{'variant':<24} {'return':>10} {'mean loss':>10} {'steps':>7}",
    ]
    for name, ret, loss, steps in rows:
        lines.append(f"{name:<24} {ret:>10.1f} {loss:>10.4f} {steps:>7}")
    write_result("rl_ablation.txt", "\n".join(lines))

    # every variant must produce finite losses and complete its budget
    for name, ret, loss, steps in rows:
        assert np.isfinite(ret), name
        assert np.isfinite(loss), name
        assert steps == episodes * max_steps, name
