"""Experiment E10 (extension): adversarial best-response probe.

The paper tests robustness with two hand-picked perturbations (Fig 6's
stealth sweep and Fig 10's APT2) and names adversarial learning as
future work. This bench automates the probe: a cross-entropy search
over the bounded attacker space finds the empirical best response to a
fixed defender, and a robustness matrix compares defenders against the
nominal, aggressive, and discovered attackers.

Expected shape: the discovered attacker achieves at least the utility
of the nominal APT1 against the same defender (the search includes APT1
in its space), and rule-based defenders leak more utility to the best
response than to the nominal attacker.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import episodes_per_cell, write_result
from repro.adversarial import (
    AttackerParameterSpace,
    CrossEntropySearch,
    format_matrix,
    make_defender_fitness,
    robustness_matrix,
)
from repro.attacker import apt1, apt2
from repro.config import small_network
from repro.dbn import fit_dbn
from repro.defenders import (
    NoopPolicy,
    PlaybookPolicy,
    ScheduledSweepPolicy,
    SemiRandomPolicy,
    ThresholdPolicy,
)

#: a faster clock makes six-month campaigns observable in short runs
_TIME_SCALE = 4.0
_MAX_STEPS = 600


def _config():
    cfg = small_network(tmax=_MAX_STEPS)
    return cfg.with_apt(replace(cfg.apt, time_scale=_TIME_SCALE))


def test_best_response_search(benchmark):
    episodes = episodes_per_cell(1)
    cfg = _config()
    defender = PlaybookPolicy()
    space = AttackerParameterSpace(base=cfg.apt)

    def run():
        fitness = make_defender_fitness(
            cfg, defender, episodes=episodes, seed=3, max_steps=_MAX_STEPS
        )
        nominal_utility = fitness(cfg.apt)
        search = CrossEntropySearch(space, fitness, population=6, seed=0)
        result = search.run(iterations=2, init_mean=space.encode(cfg.apt))
        return nominal_utility, result

    nominal_utility, result = benchmark.pedantic(run, rounds=1, iterations=1)
    best = result.best_config
    text = "\n".join([
        "Adversarial best response vs playbook "
        f"(small network, {episodes} ep/candidate, {result.evaluations} evals)",
        f"nominal APT1 utility:      {nominal_utility:.2f}",
        f"best-response utility:     {result.best_fitness:.2f}",
        "discovered attacker: "
        f"objective={best.objective} vector={best.vector} "
        f"lateral={best.lateral_threshold} plc={best.plc_threshold} "
        f"labor={best.labor_rate} cleanup={best.cleanup_effectiveness:.2f}",
    ])
    write_result("adversarial_best_response.txt", text)

    # the search space contains APT1, so the maximum over sampled
    # candidates cannot do meaningfully worse than the nominal attack
    assert result.best_fitness >= nominal_utility - 5.0


def test_robustness_matrix(benchmark):
    episodes = episodes_per_cell(2)
    cfg = _config()
    attackers = {
        "APT1": replace(apt1(), time_scale=_TIME_SCALE),
        "APT2": replace(apt2(), time_scale=_TIME_SCALE),
        "stealthy": replace(apt1(), cleanup_effectiveness=0.9, time_scale=_TIME_SCALE),
    }
    import repro

    tables = fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=2,
        seed=9,
        max_steps=_MAX_STEPS,
    )
    defenders = {
        "Noop": NoopPolicy(),
        "Playbook": PlaybookPolicy(),
        "Semi Random": SemiRandomPolicy(seed=0),
        "Sweep": ScheduledSweepPolicy(period=24, batch=4),
        "Threshold": ThresholdPolicy(tables),
    }

    def run():
        return robustness_matrix(
            cfg, defenders, attackers, episodes=episodes, seed=0, max_steps=_MAX_STEPS
        )

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"Robustness matrix ({episodes} episodes/cell, "
        f"{_MAX_STEPS}-step horizon)\n\n"
        "discounted return (defender payoff; higher = more robust)\n"
        + format_matrix(matrix, "discounted_return")
        + "\n\nfinal PLCs offline\n"
        + format_matrix(matrix, "final_plcs_offline")
        + "\n\navg nodes compromised / hour\n"
        + format_matrix(matrix, "avg_nodes_compromised")
    )
    write_result("adversarial_matrix.txt", text)

    for attacker_name in attackers:
        noop = matrix["Noop"][attacker_name].mean("avg_nodes_compromised")
        playbook = matrix["Playbook"][attacker_name].mean("avg_nodes_compromised")
        # an active defender must not tolerate more compromise than
        # no defense at all
        assert playbook <= noop + 1e-9, attacker_name
