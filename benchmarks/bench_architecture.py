"""Experiment E7: architecture ablation (Fig 5 vs Table 7).

The paper's central architectural claim: the attention network's
parameter count is independent of the protected network's size, while
the baseline convolutional network grows with it (its output layer
enumerates all 329 actions on the evaluation network). This bench
reports parameter counts across network sizes and the forward-pass
latency of both models.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.config import paper_network, small_network, tiny_network
from repro.net import build_topology
from repro.nn import no_grad
from repro.rl import (
    AttentionQNetwork,
    ConvQNetwork,
    DRQNConfig,
    QNetConfig,
    RecurrentQNetwork,
)
from repro.rl.features import (
    GLOBAL_FEATURE_DIM,
    NODE_FEATURE_DIM,
    PLC_FEATURE_DIM,
    RawHistoryEncoder,
)
from repro.sim.orchestrator import enumerate_actions


def test_parameter_scaling(benchmark):
    def build_table() -> list[str]:
        rows = [
            "network     nodes  plcs  actions  attention-params  "
            "conv-params  drqn-params"
        ]
        attention = AttentionQNetwork(QNetConfig(), seed=0)
        for name, preset in (
            ("tiny", tiny_network),
            ("small", small_network),
            ("paper", paper_network),
        ):
            topo = build_topology(preset().topology)
            attention.bind_topology(topo)
            encoder = RawHistoryEncoder(topo, window=64)
            n_actions = len(enumerate_actions(topo))
            conv = ConvQNetwork(encoder.step_dim, n_actions, seed=0)
            drqn = RecurrentQNetwork(
                encoder.step_dim, n_actions, DRQNConfig(window=64), seed=0
            )
            rows.append(
                f"{name:10s}  {topo.n_nodes:5d}  {topo.n_plcs:4d}  "
                f"{attention.n_actions:7d}  {attention.n_parameters():16d}  "
                f"{conv.n_parameters():11d}  {drqn.n_parameters():11d}"
            )
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_result("architecture.txt", "\n".join(rows))

    # the paper's claim, as an assertion
    small_topo = build_topology(small_network().topology)
    paper_topo = build_topology(paper_network().topology)
    attn_small = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(small_topo)
    attn_paper = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(paper_topo)
    assert attn_small.n_parameters() == attn_paper.n_parameters()
    conv_small = ConvQNetwork(
        RawHistoryEncoder(small_topo, 64).step_dim,
        len(enumerate_actions(small_topo)),
        seed=0,
    )
    conv_paper = ConvQNetwork(
        RawHistoryEncoder(paper_topo, 64).step_dim,
        len(enumerate_actions(paper_topo)),
        seed=0,
    )
    assert conv_paper.n_parameters() > conv_small.n_parameters()


def test_attention_forward_latency(benchmark):
    topo = build_topology(paper_network().topology)
    qnet = AttentionQNetwork(QNetConfig(), seed=0).bind_topology(topo)
    rng = np.random.default_rng(0)
    node = rng.random((1, topo.n_nodes, NODE_FEATURE_DIM))
    plc = rng.random((1, topo.n_plcs, PLC_FEATURE_DIM))
    glob = rng.random((1, GLOBAL_FEATURE_DIM))

    def forward():
        with no_grad():
            return qnet.forward(node, plc, glob).data

    out = benchmark(forward)
    assert out.shape == (1, qnet.n_actions)


def test_conv_forward_latency(benchmark):
    topo = build_topology(paper_network().topology)
    encoder = RawHistoryEncoder(topo, window=64)
    conv = ConvQNetwork(encoder.step_dim, len(enumerate_actions(topo)), seed=0)
    history = np.random.default_rng(0).random((1, encoder.step_dim, 64))

    def forward():
        with no_grad():
            return conv.forward(history).data

    out = benchmark(forward)
    assert out.shape == (1, 329)
