"""Benchmark-regression gate for the OPE trace-store throughput sweep.

Judges a fresh ``bench_ope.py`` script-mode report (the nightly
``ope-bench`` CI job grows a >= 1M-transition synthetic trace) against
**absolute transitions/s floors**. Unlike the vectorized-throughput
gate there is no committed baseline to calibrate against: the sweep is
synthetic and single-threaded, so its rates depend only mildly on the
runner class, and the floors are set ~4-7x below the reference
container's measured rates (write ~6.2k/s, read ~67k/s, estimate
~27k/s on a 1-CPU host) — generous enough for a slow runner, tight
enough that an accidentally quadratic decode path or a per-row fsync
cannot hide.

The gate also refuses to pass a shrunken workload: a report measuring
fewer than ``--min-transitions`` transitions is *unusable* (exit 2),
not passing — otherwise turning the nightly job's trace size down
would quietly weaken the gate.

Exit status 0 = within floors, 1 = regression, 2 = unusable inputs.

Usage (what the nightly ``ope-bench`` job runs)::

    python benchmarks/bench_ope.py --transitions 1000000 --out bench_ope.json
    python benchmarks/compare_bench_ope.py bench_ope.json \
        --min-transitions 1000000
"""

from __future__ import annotations

import argparse
import json
import sys

#: stage -> absolute transitions/s floor (see module docstring for the
#: reference-container rates these derive from)
DEFAULT_FLOORS = {
    "write": 1_500.0,
    "read": 10_000.0,
    "estimate": 4_000.0,
}

REQUIRED_STAGES = tuple(DEFAULT_FLOORS)


def compare(
    report: dict,
    floors: dict[str, float],
    min_transitions: int = 0,
) -> tuple[int, list[str]]:
    """Return (exit status, report lines) for a throughput report."""
    lines: list[str] = []
    try:
        cells = {r["stage"]: r for r in report["results"]}
    except (KeyError, TypeError):
        return 2, ["report has no results list; rerun bench_ope.py script mode"]
    missing = [stage for stage in REQUIRED_STAGES if stage not in cells]
    if missing:
        return 2, [
            f"report is missing required stages {missing}; rerun "
            "bench_ope.py script mode"
        ]
    failures = 0
    for stage in REQUIRED_STAGES:
        cell = cells[stage]
        transitions = int(cell.get("transitions", 0))
        rate = float(cell.get("transitions_per_s", 0.0))
        if transitions < min_transitions:
            return 2, lines + [
                f"stage {stage!r} measured only {transitions} transitions "
                f"(gate requires >= {min_transitions}); the workload was "
                "shrunk — rerun with --transitions at the gated size"
            ]
        floor = floors[stage]
        verdict = "ok"
        if rate < floor:
            verdict = f"FAIL (floor {floor:.0f}/s)"
            failures += 1
        lines.append(
            f"{stage:>9}: {rate:>10.0f} transitions/s over {transitions} "
            f"transitions  {verdict}"
        )
    return (1 if failures else 0), lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="fresh bench_ope.py script-mode report")
    parser.add_argument(
        "--min-write",
        type=float,
        default=DEFAULT_FLOORS["write"],
        help="write-stage floor, transitions/s (default: "
        f"{DEFAULT_FLOORS['write']:.0f})",
    )
    parser.add_argument(
        "--min-read",
        type=float,
        default=DEFAULT_FLOORS["read"],
        help="read-stage floor, transitions/s (default: "
        f"{DEFAULT_FLOORS['read']:.0f})",
    )
    parser.add_argument(
        "--min-estimate",
        type=float,
        default=DEFAULT_FLOORS["estimate"],
        help="estimate-stage floor, transitions/s (default: "
        f"{DEFAULT_FLOORS['estimate']:.0f})",
    )
    parser.add_argument(
        "--min-transitions",
        type=int,
        default=0,
        help="refuse (exit 2) reports measuring fewer transitions than "
        "this (default: 0 — accept any size)",
    )
    args = parser.parse_args(argv)

    with open(args.report) as handle:
        report = json.load(handle)
    floors = {
        "write": args.min_write,
        "read": args.min_read,
        "estimate": args.min_estimate,
    }
    status, lines = compare(report, floors, min_transitions=args.min_transitions)
    print("\n".join(lines))
    if status == 0:
        print("ope benchmark gate: OK")
    else:
        print("ope benchmark gate: FAILED", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
