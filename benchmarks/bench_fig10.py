"""Experiment E3: Fig 10 -- robustness to a more aggressive attacker.

Evaluates every policy against APT1 (the nominal attacker used for
ACSO training) and APT2 (lateral threshold 1, PLC thresholds 5/10 --
faster through the tactics graph, less redundant access), reporting the
three Fig 10 panels: final PLCs offline, average IT cost, and average
nodes compromised.

In the paper, the ACSO's metrics barely move between APT1 and APT2
while the playbook starts losing PLCs against APT2 (0.45 average
offline) -- the learned policy generalizes to unseen attacker behavior.
"""

from __future__ import annotations

from benchmarks.conftest import episodes_per_cell, write_result
from repro.eval import bar_chart, format_sweep_table, run_fig10


def test_fig10_apt_policies(benchmark, eval_config, policy_suite):
    episodes = episodes_per_cell(3)

    def run():
        return run_fig10(eval_config, policy_suite, episodes=episodes, seed=200)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    panels = [
        ("final_plcs_offline", "Fig 10a: final PLCs offline"),
        ("avg_it_cost", "Fig 10b: average IT cost"),
        ("avg_nodes_compromised", "Fig 10c: avg nodes compromised"),
    ]
    blocks = [
        format_sweep_table(
            results, metric, "APT", title=f"{title} ({episodes} episodes/cell)"
        )
        for metric, title in panels
    ]
    for metric, title in panels:
        labels, values = [], []
        for apt_name, table in results.items():
            for policy_name, agg in table.items():
                labels.append(f"{policy_name} vs {apt_name}")
                values.append(agg.mean(metric))
        blocks.append(
            bar_chart(labels, values, width=36, title=f"{title} (chart)", fmt="{:.3f}")
        )
    write_result("fig10.txt", "\n\n".join(blocks))

    for name in policy_suite:
        assert results["APT1"][name].episodes == episodes
        assert results["APT2"][name].episodes == episodes
