#!/usr/bin/env python
"""Fit the evaluation DBN tables on the paper network at nominal speed.

The paper fits its filter from 1,000 random-defender episodes; the
episode count here is tunable (default 16) to fit CI budgets. Writes
benchmarks/data/dbn_paper.npz.
"""
import argparse
import pathlib
import time

import repro
from repro.config import paper_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy

parser = argparse.ArgumentParser(description=__doc__)
parser.add_argument("--episodes", type=int, default=16)
parser.add_argument("--seed", type=int, default=0)
parser.add_argument("--out", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent / "data")
args = parser.parse_args()
args.out.mkdir(parents=True, exist_ok=True)

cfg = paper_network()
t0 = time.time()
tables = fit_dbn(
    lambda: repro.make_env(cfg),
    lambda: SemiRandomPolicy(rate=5.0),
    episodes=args.episodes,
    seed=args.seed,
)
tables.save(args.out / "dbn_paper.npz")
print(f"fitted {args.episodes} episodes in {time.time() - t0:.0f}s "
      f"-> {args.out / 'dbn_paper.npz'}")
