"""Experiment E1: Table 2 -- nominal evaluation results.

Regenerates the paper's headline table: the four defender policies
evaluated on the full network with nominal APT parameters (cleanup
effectiveness 0.5, APT1 thresholds), reporting discounted return,
final PLCs offline, average IT cost, and average nodes compromised.

Paper reference values (100 episodes):

    Policy       Return        PLCs offline  IT cost  Nodes compromised
    ACSO         2149.9 +/-0.2  0.0           0.15     0.56
    DBN Expert   1970.5 +/-26.6 5.6           0.40     0.62
    Playbook     2142.6 +/-0.1  0.0           0.21     0.63
    Semi Random  2071.9 +/-0.1  0.0           0.60     0.88

The shape to check: every automated policy protects the PLCs, the ACSO
does it at the lowest IT cost, the expert is the most expensive, and
the random baseline tolerates the most node compromise among
PLC-protecting policies.
"""

from __future__ import annotations

from benchmarks.conftest import episodes_per_cell, write_result
from repro.eval import format_aggregate_table, run_table2


def test_table2_nominal(benchmark, eval_config, policy_suite):
    episodes = episodes_per_cell(4)

    def run():
        return run_table2(eval_config, policy_suite, episodes=episodes, seed=0)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_aggregate_table(
        results,
        title=f"Table 2: nominal evaluation ({episodes} episodes/policy)",
    )
    write_result("table2.txt", text)

    # shape assertions (loose: small-sample evaluation)
    assert results["Playbook"].mean("final_plcs_offline") < 5
    assert results["Semi Random"].mean("avg_it_cost") > results["Playbook"].mean(
        "avg_it_cost"
    )
