"""Experiment E11 (extension): off-policy evaluation accuracy.

"Data-efficient methods to validate learned policies" (paper Section 7):
this bench measures how well each OPE estimator recovers a target
policy's true value from logged behaviour episodes, without running the
target in the environment.

Protocol: log episodes under an exploratory behaviour policy (softmax-Q
with epsilon floor), estimate the value of a greedier target policy via
OIS / WIS / PDIS / FQE / DR, and compare against an on-policy Monte
Carlo ground truth of the same horizon. Expected shape: the weighted
and doubly-robust estimators sit closest to the ground truth, while
ordinary IS shows the worst effective sample size -- the textbook
ordering, and the reason DR exists.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import episodes_per_cell, write_result
import repro
from repro.config import tiny_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import AttentionQNetwork, QNetConfig
from repro.validation import (
    StochasticQPolicy,
    collect_logged_episodes,
    doubly_robust,
    fitted_q_evaluation,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    weighted_importance_sampling,
)

_HORIZON = 25
_QNET = QNetConfig(d_model=16, n_heads=2, encoder_hidden=32, head_hidden=32)


def test_ope_estimator_accuracy(benchmark):
    n_logged = episodes_per_cell(6)
    n_truth = episodes_per_cell(6)
    cfg = tiny_network(tmax=_HORIZON)
    tables = fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=3.0),
        episodes=4,
        seed=21,
        max_steps=_HORIZON,
    )

    def run():
        env = repro.make_env(cfg, seed=0)
        qnet = AttentionQNetwork(_QNET, seed=3)
        qnet.bind_topology(env.topology)
        behavior = StochasticQPolicy(qnet, tables, temperature=1.0, epsilon=0.4, seed=0)
        target = StochasticQPolicy(qnet, tables, temperature=0.25, epsilon=0.1, seed=1)

        logged = collect_logged_episodes(
            env, behavior, n_logged, seed=100, max_steps=_HORIZON
        )
        # Monte-Carlo ground truth: run the target on-policy
        truth_eps = collect_logged_episodes(
            env, target, n_truth, seed=100, max_steps=_HORIZON
        )
        truth = float(np.mean([ep.discounted_return() for ep in truth_eps]))

        ois = ordinary_importance_sampling(logged, target)
        wis = weighted_importance_sampling(logged, target)
        pdis = per_decision_importance_sampling(logged, target, clip=10.0)
        eval_net = AttentionQNetwork(_QNET, seed=11)
        eval_net.bind_topology(env.topology)
        fqe = fitted_q_evaluation(
            logged,
            target,
            eval_net,
            iterations=4,
            epochs_per_iteration=1,
            batch_size=32,
            lr=3e-3,
            mc_epochs=4,
        )
        dr = doubly_robust(
            logged, target, eval_net, clip=10.0, reward_scale=fqe.reward_scale
        )
        return truth, ois, wis, pdis, fqe, dr

    truth, ois, wis, pdis, fqe, dr = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"OPE accuracy ({n_logged} logged episodes, {_HORIZON}-step "
        "horizon, tiny network)",
        f"on-policy MC ground truth: {truth:.2f}",
        f"{'estimator':<8} {'estimate':>10} {'|error|':>9} {'ESS':>6}",
    ]
    for result in (ois, wis, pdis, dr):
        lines.append(
            f"{result.method:<8} {result.estimate:>10.2f} "
            f"{abs(result.estimate - truth):>9.2f} {result.ess:>6.1f}"
        )
    lines.append(
        f"{'FQE':<8} {fqe.value:>10.2f} {abs(fqe.value - truth):>9.2f}"
        "      - (model-based; no weights)"
    )
    write_result("ope_accuracy.txt", "\n".join(lines))

    for result in (ois, wis, pdis, dr):
        assert np.isfinite(result.estimate), result.method
    assert wis.ess <= n_logged + 1e-9
    assert np.isfinite(fqe.value)
