"""Experiment E11 (extension): off-policy evaluation accuracy.

"Data-efficient methods to validate learned policies" (paper Section 7):
this bench measures how well each OPE estimator recovers a target
policy's true value from logged behaviour episodes, without running the
target in the environment.

Protocol: log episodes under an exploratory behaviour policy (softmax-Q
with epsilon floor), estimate the value of a greedier target policy via
OIS / WIS / PDIS / FQE / DR, and compare against an on-policy Monte
Carlo ground truth of the same horizon. Expected shape: the weighted
and doubly-robust estimators sit closest to the ground truth, while
ordinary IS shows the worst effective sample size -- the textbook
ordering, and the reason DR exists.

Two entry points:

* pytest-benchmark accuracy cell (above protocol)::

      PYTHONPATH=src python -m pytest benchmarks/bench_ope.py

* the trace-store throughput sweep, which grows a synthetic columnar
  trace at small-network feature geometry and reports transitions/s
  for the write, read (full decode), and estimate (importance-sampling
  scalar pass) stages — what the nightly ``ope-bench`` CI job runs and
  gates through ``benchmarks/compare_bench_ope.py``::

      PYTHONPATH=src python benchmarks/bench_ope.py \
          --transitions 1000000 --out bench_ope.json

The throughput stages use synthetic feature records (a cycled pool of
pre-drawn states) and a linear-softmax target policy: the sweep
measures the trace store and the estimator *plumbing* — serialization,
shard IO, decode, propensity batching — not Q-network inference, which
would dominate wall time long before a million transitions.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import sys
import tempfile
import time

import numpy as np

import repro
from repro.config import small_network, tiny_network
from repro.dbn import fit_dbn
from repro.defenders import SemiRandomPolicy
from repro.rl import AttentionQNetwork, QNetConfig
from repro.rl.features import (
    FeatureSet,
    GLOBAL_FEATURE_DIM,
    NODE_FEATURE_DIM,
    PLC_FEATURE_DIM,
)
from repro.sim.orchestrator import enumerate_actions
from repro.validation import (
    StochasticQPolicy,
    TraceDataset,
    TraceDims,
    TraceWriter,
    collect_logged_episodes,
    doubly_robust,
    episode_ope_stats,
    fitted_q_evaluation,
    ordinary_importance_sampling,
    per_decision_importance_sampling,
    trace_record_dtype,
    weighted_importance_sampling,
)

_HORIZON = 25
_QNET = QNetConfig(d_model=16, n_heads=2, encoder_hidden=32, head_hidden=32)


def test_ope_estimator_accuracy(benchmark):
    # imported here, not at module top: conftest resolves via pytest's
    # rootdir, which script mode (python benchmarks/bench_ope.py) lacks
    from benchmarks.conftest import episodes_per_cell, write_result

    n_logged = episodes_per_cell(6)
    n_truth = episodes_per_cell(6)
    cfg = tiny_network(tmax=_HORIZON)
    tables = fit_dbn(
        lambda: repro.make_env(cfg),
        lambda: SemiRandomPolicy(rate=3.0),
        episodes=4,
        seed=21,
        max_steps=_HORIZON,
    )

    def run():
        env = repro.make_env(cfg, seed=0)
        qnet = AttentionQNetwork(_QNET, seed=3)
        qnet.bind_topology(env.topology)
        behavior = StochasticQPolicy(qnet, tables, temperature=1.0, epsilon=0.4, seed=0)
        target = StochasticQPolicy(qnet, tables, temperature=0.25, epsilon=0.1, seed=1)

        logged = collect_logged_episodes(
            env, behavior, n_logged, seed=100, max_steps=_HORIZON
        )
        # Monte-Carlo ground truth: run the target on-policy
        truth_eps = collect_logged_episodes(
            env, target, n_truth, seed=100, max_steps=_HORIZON
        )
        truth = float(np.mean([ep.discounted_return() for ep in truth_eps]))

        ois = ordinary_importance_sampling(logged, target)
        wis = weighted_importance_sampling(logged, target)
        pdis = per_decision_importance_sampling(logged, target, clip=10.0)
        eval_net = AttentionQNetwork(_QNET, seed=11)
        eval_net.bind_topology(env.topology)
        fqe = fitted_q_evaluation(
            logged,
            target,
            eval_net,
            iterations=4,
            epochs_per_iteration=1,
            batch_size=32,
            lr=3e-3,
            mc_epochs=4,
        )
        dr = doubly_robust(
            logged, target, eval_net, clip=10.0, reward_scale=fqe.reward_scale
        )
        return truth, ois, wis, pdis, fqe, dr

    truth, ois, wis, pdis, fqe, dr = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"OPE accuracy ({n_logged} logged episodes, {_HORIZON}-step "
        "horizon, tiny network)",
        f"on-policy MC ground truth: {truth:.2f}",
        f"{'estimator':<8} {'estimate':>10} {'|error|':>9} {'ESS':>6}",
    ]
    for result in (ois, wis, pdis, dr):
        lines.append(
            f"{result.method:<8} {result.estimate:>10.2f} "
            f"{abs(result.estimate - truth):>9.2f} {result.ess:>6.1f}"
        )
    lines.append(
        f"{'FQE':<8} {fqe.value:>10.2f} {abs(fqe.value - truth):>9.2f}"
        "      - (model-based; no weights)"
    )
    write_result("ope_accuracy.txt", "\n".join(lines))

    for result in (ois, wis, pdis, dr):
        assert np.isfinite(result.estimate), result.method
    assert wis.ess <= n_logged + 1e-9
    assert np.isfinite(fqe.value)


# ----------------------------------------------------------------------
# trace-store throughput sweep (script mode; nightly ope-bench CI job)
# ----------------------------------------------------------------------

#: distinct pre-drawn synthetic states cycled through the writer: large
#: enough that shard compression/caching cannot fake the measurement,
#: small enough that state generation stays off the clock
_POOL_SIZE = 512


class _LinearSoftmaxPolicy:
    """Masked linear-softmax propensities over flattened features.

    A stand-in target policy for the throughput sweep: one matmul per
    episode via ``action_probs_batch`` — the same batched-propensity
    fast path the real :class:`StochasticQPolicy` exercises, without
    attention-network inference swamping the trace-store measurement.
    """

    def __init__(self, dims: TraceDims, seed: int, temperature: float = 2.0):
        rng = np.random.default_rng(seed)
        flat = dims.n_nodes * dims.node_dim + dims.n_plcs * dims.plc_dim + dims.glob_dim
        self._weights = rng.standard_normal((flat, dims.n_actions))
        self._temperature = float(temperature)

    def _flatten(self, features: FeatureSet) -> np.ndarray:
        return np.concatenate(
            [
                np.asarray(features.node, dtype=np.float64).ravel(),
                np.asarray(features.plc, dtype=np.float64).ravel(),
                np.asarray(features.glob, dtype=np.float64),
            ]
        )

    def _probs(self, scores: np.ndarray, mask: np.ndarray) -> np.ndarray:
        valid = np.asarray(mask, dtype=bool)
        z = np.where(valid, scores / self._temperature, -np.inf)
        z -= z.max()
        exp = np.exp(z)
        return exp / exp.sum()

    def action_probs(self, features: FeatureSet, mask) -> np.ndarray:
        return self._probs(self._flatten(features) @ self._weights, mask)

    def action_probs_batch(self, features_list, masks) -> list[np.ndarray]:
        flats = np.stack([self._flatten(f) for f in features_list])
        scores = flats @ self._weights
        return [self._probs(s, m) for s, m in zip(scores, masks)]


def _small_net_dims(horizon: int) -> TraceDims:
    """The small network's real trace geometry (features + action space)."""
    env = repro.make_env(small_network(tmax=horizon), seed=0)
    return TraceDims(
        n_nodes=env.topology.n_nodes,
        node_dim=NODE_FEATURE_DIM,
        n_plcs=env.topology.n_plcs,
        plc_dim=PLC_FEATURE_DIM,
        glob_dim=GLOBAL_FEATURE_DIM,
        n_actions=len(enumerate_actions(env.topology)),
    )


def _synthetic_pool(dims: TraceDims, seed: int) -> list[tuple]:
    """Pre-drawn (features, mask, action, behavior_prob) records."""
    rng = np.random.default_rng(seed)
    pool = []
    for _ in range(_POOL_SIZE):
        features = FeatureSet(
            node=rng.random((dims.n_nodes, dims.node_dim)),
            plc=rng.random((dims.n_plcs, dims.plc_dim)),
            glob=rng.random(dims.glob_dim),
        )
        mask = rng.random(dims.n_actions) < 0.5
        if not mask.any():
            mask[0] = True
        valid = np.flatnonzero(mask)
        action = int(valid[rng.integers(len(valid))])
        pool.append((features, mask, action, 1.0 / len(valid)))
    return pool


def _bench_write(trace_dir, dims, episodes, horizon, shard_rows, seed):
    pool = _synthetic_pool(dims, seed)
    rng = np.random.default_rng(seed + 1)
    rewards = rng.standard_normal(episodes * horizon)
    index = 0
    start = time.perf_counter()
    with TraceWriter(
        trace_dir,
        shard_rows=shard_rows,
        meta={"generator": "bench_ope-synthetic", "horizon": horizon},
    ) as writer:
        for episode in range(episodes):
            writer.begin_episode(episode, lane=0, seed=seed + episode, gamma=0.99)
            for t in range(horizon):
                features, mask, action, prob = pool[index % _POOL_SIZE]
                writer.append_step(
                    episode,
                    action=action,
                    behavior_prob=prob,
                    reward=float(rewards[index]),
                    done=t == horizon - 1,
                    features=features,
                    mask=mask,
                )
                index += 1
            final = pool[(index + episode) % _POOL_SIZE]
            writer.finish_episode(episode, final_features=final[0], final_mask=final[1])
    return time.perf_counter() - start


def _bench_read(trace_dir, expected_transitions):
    start = time.perf_counter()
    dataset = TraceDataset(trace_dir)
    transitions = sum(len(episode.steps) for episode in dataset)
    elapsed = time.perf_counter() - start
    if transitions != expected_transitions:
        raise RuntimeError(
            f"trace round-trip lost transitions: wrote {expected_transitions}, "
            f"read back {transitions}"
        )
    return elapsed


def _bench_estimate(trace_dir, dims, seed):
    target = _LinearSoftmaxPolicy(dims, seed=seed + 2)
    start = time.perf_counter()
    dataset = TraceDataset(trace_dir)
    stats = [episode_ope_stats(episode, target) for episode in dataset]
    elapsed = time.perf_counter() - start
    weights = np.array([s.weight for s in stats])
    if not np.all(np.isfinite(weights)):
        raise RuntimeError("synthetic trace produced non-finite IS weights")
    return elapsed


def run_trace_sweep(
    transitions: int,
    *,
    horizon: int = 100,
    shard_rows: int = 16384,
    seed: int = 0,
    trace_dir: str | None = None,
) -> dict:
    """Grow a synthetic trace and measure write/read/estimate rates."""
    episodes = max(1, math.ceil(transitions / horizon))
    actual = episodes * horizon
    dims = _small_net_dims(horizon)
    record_bytes = trace_record_dtype(dims).itemsize

    def sweep(path):
        print(
            f"growing {actual} transitions ({episodes} episodes x {horizon} "
            f"steps, {record_bytes} B/record) in {path}",
            file=sys.stderr,
        )
        results = []

        def bench_write():
            return _bench_write(path, dims, episodes, horizon, shard_rows, seed)

        stages = (
            ("write", bench_write),
            ("read", lambda: _bench_read(path, actual)),
            ("estimate", lambda: _bench_estimate(path, dims, seed)),
        )
        for stage, run in stages:
            elapsed = run()
            results.append(
                {
                    "stage": stage,
                    "transitions": actual,
                    "seconds": round(elapsed, 3),
                    "transitions_per_s": round(actual / elapsed, 1),
                }
            )
            print(
                f"{stage:>9}: {actual / elapsed:>10.0f} transitions/s "
                f"({elapsed:.2f}s)",
                file=sys.stderr,
            )
        store_bytes = sum(
            f.stat().st_size for f in pathlib.Path(path).glob("shard-*.bin")
        )
        return results, store_bytes

    if trace_dir is not None:
        results, store_bytes = sweep(trace_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="bench_ope_") as tmp:
            results, store_bytes = sweep(os.path.join(tmp, "trace"))

    return {
        "meta": {
            "bench": "ope_trace_throughput",
            "network": "small",
            "dims": dims._asdict(),
            "record_bytes": record_bytes,
            "horizon": horizon,
            "episodes": episodes,
            "shard_rows": shard_rows,
            "store_bytes": store_bytes,
            "seed": seed,
            "host": {
                "python": platform.python_version(),
                "platform_system": platform.system(),
                "cpu_count": os.cpu_count(),
            },
        },
        "results": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--transitions",
        type=int,
        default=1_000_000,
        help="trace size to grow (default: 1,000,000 — the nightly floor)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=100,
        help="steps per synthetic episode (default: 100)",
    )
    parser.add_argument("--shard-rows", type=int, default=16384)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="grow the trace here and keep it (default: a temp dir, deleted)",
    )
    parser.add_argument(
        "--out",
        default="bench_ope.json",
        help="JSON report path (feeds benchmarks/compare_bench_ope.py)",
    )
    args = parser.parse_args(argv)

    report = run_trace_sweep(
        args.transitions,
        horizon=args.horizon,
        shard_rows=args.shard_rows,
        seed=args.seed,
        trace_dir=args.trace_dir,
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
