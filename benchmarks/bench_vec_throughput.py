"""Experiment E5b: vectorized simulator throughput.

Companion to ``bench_sim_throughput.py``: the same three network
presets, but stepping a :class:`~repro.sim.vec_env.VectorEnv` of
N ∈ {1, 4, 16} lanes in lockstep. The benchmark reports *aggregate*
environment steps per second (lanes × lockstep rounds / wall time) via
``extra_info["aggregate_steps_per_s"]`` — the number to compare against
the single-env baseline: at N=16 the aggregate rate must be at least
the single-env rate for batched rollout to be the default execution
path.

Run:
    PYTHONPATH=src python -m pytest benchmarks/bench_vec_throughput.py
"""

from __future__ import annotations

import pytest

import repro

_SCENARIOS = {
    "tiny": "inasim-tiny-v1",
    "small": "inasim-small-v1",
    "paper": "inasim-paper-v1",
}

_STEPS = 100


@pytest.mark.parametrize("preset", list(_SCENARIOS))
@pytest.mark.parametrize("num_envs", [1, 4, 16])
def test_vec_steps_noop(benchmark, preset, num_envs):
    venv = repro.make_vec(_SCENARIOS[preset], num_envs, seed=0)

    def run_chunk():
        for _ in range(_STEPS):
            venv.step(None)

    benchmark.pedantic(run_chunk, rounds=3, iterations=1,
                       setup=lambda: (venv.reset(seed=0), None)[1])
    rate = _STEPS * num_envs / benchmark.stats.stats.mean
    benchmark.extra_info["aggregate_steps_per_s"] = rate
    benchmark.extra_info["num_envs"] = num_envs


def test_vec_matches_single_env_throughput(benchmark):
    """Sanity anchor: N=16 aggregate steps/s >= the single-env rate.

    Runs both inside one benchmark cell so the comparison shares a
    machine state; asserts the acceptance criterion directly.
    """
    import time

    env = repro.make("inasim-paper-v1", seed=0)
    venv = repro.make_vec("inasim-paper-v1", 16, seed=0)

    def measure(step_fn, steps):
        start = time.perf_counter()
        for _ in range(steps):
            step_fn()
        return time.perf_counter() - start

    env.reset(seed=0)
    venv.reset(seed=0)
    # warmup: first steps pay topology/alert cache costs
    measure(lambda: env.step(None), 20)
    measure(lambda: venv.step(None), 5)

    env.reset(seed=0)
    single_rate = _STEPS / measure(lambda: env.step(None), _STEPS)
    venv.reset(seed=0)
    vec_rate = 16 * 50 / measure(lambda: venv.step(None), 50)

    benchmark.extra_info["single_steps_per_s"] = single_rate
    benchmark.extra_info["vec16_aggregate_steps_per_s"] = vec_rate
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # the sequential in-process VectorEnv sits at ~1.0-1.1x the
    # single-env rate, so allow timer/scheduler jitter; a real
    # regression (per-step overhead in the vec path) shows up far
    # below this floor
    assert vec_rate >= 0.9 * single_rate, (
        f"VectorEnv aggregate rate {vec_rate:.0f} steps/s fell below 0.9x "
        f"the single-env baseline {single_rate:.0f} steps/s"
    )
