"""Experiment E5b: vectorized simulator throughput across backends.

Companion to ``bench_sim_throughput.py``: the same three network
presets, stepping a lockstep vector environment of N ∈ {1, 4, 16}
lanes through each backend (``sync`` in-process lanes, ``batched``
structure-of-arrays lanes, ``process`` worker pools, ``shm`` worker
pools with shared-memory batches). The benchmark reports *aggregate*
environment steps per second (lanes × lockstep rounds / wall time) —
the number tracked against the repo's perf trajectory.

Two entry points:

* pytest-benchmark cells (CI trend lines)::

      PYTHONPATH=src python -m pytest benchmarks/bench_vec_throughput.py

* the machine-readable sweep, which writes ``BENCH_vec_throughput.json``
  at the repo root (steps/s per backend × num_envs × network, plus the
  speedup against the PR 1 sequential-engine baseline)::

      PYTHONPATH=src python benchmarks/bench_vec_throughput.py
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import sys
import time

import pytest

import repro

_SCENARIOS = {
    "tiny": "inasim-tiny-v1",
    "small": "inasim-small-v1",
    "paper": "inasim-paper-v1",
}

_STEPS = 100

#: Aggregate steps/s of the PR 1 engine (sequential VectorEnv, no
#: hot-path caches) at num_envs=16 on the paper network, measured on
#: this repo's reference host via a git-stash A/B of the same noop
#: workload (PR 1's own CHANGES.md records the same ~11k figure). The
#: sweep reports its speedups against this trajectory baseline — that
#: ratio is only meaningful on a host comparable to the fingerprint
#: below; elsewhere, re-measure the baseline (git checkout of PR 1,
#: same workload) and pass it via ``--baseline``.
PR1_BASELINE_PAPER_VEC16 = 11127.0
PR1_BASELINE_HOST = {"cpu_count": 1, "python": "3.11.7", "platform_system": "Linux"}


def _measure(venv, rounds: int, seed: int, warmup: int = 10) -> float:
    """Best-of-3 aggregate env steps/s for a noop lockstep workload."""
    venv.reset(seed=seed)
    for _ in range(warmup):
        venv.step(None)
    best = None
    for _ in range(3):
        venv.reset(seed=seed)
        start = time.perf_counter()
        for _ in range(rounds):
            venv.step(None)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return rounds * venv.num_envs / best


# ----------------------------------------------------------------------
# pytest-benchmark cells
# ----------------------------------------------------------------------
@pytest.mark.parametrize("preset", list(_SCENARIOS))
@pytest.mark.parametrize("num_envs", [1, 4, 16])
def test_vec_steps_noop(benchmark, preset, num_envs):
    venv = repro.make_vec(_SCENARIOS[preset], num_envs, seed=0)

    def run_chunk():
        for _ in range(_STEPS):
            venv.step(None)

    benchmark.pedantic(
        run_chunk, rounds=3, iterations=1, setup=lambda: (venv.reset(seed=0), None)[1]
    )
    rate = _STEPS * num_envs / benchmark.stats.stats.mean
    benchmark.extra_info["aggregate_steps_per_s"] = rate
    benchmark.extra_info["num_envs"] = num_envs


@pytest.mark.parametrize("num_envs", [1, 16])
def test_vec_steps_noop_batched(benchmark, num_envs):
    """The SoA batched backend on the paper net (the tracked cell)."""
    venv = repro.make_vec(
        _SCENARIOS["paper"], num_envs, seed=0, backend="batched"
    )

    def run_chunk():
        for _ in range(_STEPS):
            venv.step(None)

    benchmark.pedantic(
        run_chunk, rounds=3, iterations=1, setup=lambda: (venv.reset(seed=0), None)[1]
    )
    rate = _STEPS * num_envs / benchmark.stats.stats.mean
    benchmark.extra_info["aggregate_steps_per_s"] = rate
    benchmark.extra_info["num_envs"] = num_envs
    benchmark.extra_info["backend"] = "batched"


@pytest.mark.slow
@pytest.mark.parametrize("backend", ["process", "shm"])
def test_vec_steps_noop_parallel_backends(benchmark, backend):
    """Worker-pool backends on the paper net (startup cost amortized)."""
    with repro.make_vec(_SCENARIOS["paper"], 16, seed=0, backend=backend) as venv:
        venv.reset(seed=0)
        venv.step(None)  # warm the pipes

        def run_chunk():
            for _ in range(_STEPS):
                venv.step(None)

        benchmark.pedantic(
            run_chunk,
            rounds=3,
            iterations=1,
            setup=lambda: (venv.reset(seed=0), None)[1],
        )
    rate = _STEPS * 16 / benchmark.stats.stats.mean
    benchmark.extra_info["aggregate_steps_per_s"] = rate
    benchmark.extra_info["backend"] = backend


def test_vec_matches_single_env_throughput(benchmark):
    """Sanity anchor: N=16 aggregate steps/s >= the single-env rate.

    Runs both inside one benchmark cell so the comparison shares a
    machine state; asserts the acceptance criterion directly.
    """
    env = repro.make("inasim-paper-v1", seed=0)
    venv = repro.make_vec("inasim-paper-v1", 16, seed=0)

    def measure(step_fn, steps):
        start = time.perf_counter()
        for _ in range(steps):
            step_fn()
        return time.perf_counter() - start

    env.reset(seed=0)
    venv.reset(seed=0)
    # warmup: first steps pay topology/alert cache costs
    measure(lambda: env.step(None), 20)
    measure(lambda: venv.step(None), 5)

    env.reset(seed=0)
    single_rate = _STEPS / measure(lambda: env.step(None), _STEPS)
    venv.reset(seed=0)
    vec_rate = 16 * 50 / measure(lambda: venv.step(None), 50)

    benchmark.extra_info["single_steps_per_s"] = single_rate
    benchmark.extra_info["vec16_aggregate_steps_per_s"] = vec_rate
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # the sync VectorEnv amortizes per-round overhead, so its aggregate
    # rate tracks the single-env rate; allow timer/scheduler jitter —
    # a real regression (per-step overhead in the vec path) shows up
    # far below this floor
    assert vec_rate >= 0.9 * single_rate, (
        f"VectorEnv aggregate rate {vec_rate:.0f} steps/s fell below 0.9x "
        f"the single-env baseline {single_rate:.0f} steps/s"
    )


# ----------------------------------------------------------------------
# machine-readable sweep
# ----------------------------------------------------------------------
def run_sweep(networks, backends, env_counts, rounds, seed=0, num_workers=None) -> dict:
    results = []
    for network in networks:
        scenario = _SCENARIOS[network]
        for backend in backends:
            for num_envs in env_counts:
                venv = repro.make_vec(
                    scenario,
                    num_envs,
                    seed=seed,
                    backend=backend,
                    num_workers=num_workers,
                )
                try:
                    rate = _measure(venv, rounds, seed)
                    workers = getattr(venv, "num_workers", None)
                finally:
                    venv.close()
                results.append(
                    {
                        "network": network,
                        "backend": backend,
                        "num_envs": num_envs,
                        "num_workers": workers,
                        "aggregate_steps_per_s": round(rate, 1),
                    }
                )
                print(
                    f"  {network:>5} {backend:>7} x{num_envs:<3} "
                    f"{rate:>10.0f} steps/s",
                    file=sys.stderr,
                )
    return {
        "meta": {
            "workload": "noop lockstep rounds (repro.make_vec defaults)",
            "rounds_per_cell": rounds,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "note": (
                "aggregate_steps_per_s = num_envs * lockstep rounds / "
                "wall time, best of 3. Worker-pool backends need spare "
                "cores to pay off; on a single-CPU host they trail sync "
                "(pure IPC overhead) and the engine hot-path speedup "
                "carries the trajectory."
            ),
            "pr1_baseline": {
                "network": "paper",
                "num_envs": 16,
                "backend": "sync (PR 1 sequential engine)",
                "aggregate_steps_per_s": PR1_BASELINE_PAPER_VEC16,
                "host": PR1_BASELINE_HOST,
            },
        },
        "results": results,
    }


def summarize(report: dict) -> dict:
    cells = [
        r for r in report["results"] if r["network"] == "paper" and r["num_envs"] == 16
    ]
    if not cells:
        return {}
    best = max(cells, key=lambda r: r["aggregate_steps_per_s"])
    # batched is in-process: only the worker-pool backends are "parallel"
    parallel = [r for r in cells if r["backend"] in ("process", "shm")]
    best_parallel = (
        max(parallel, key=lambda r: r["aggregate_steps_per_s"]) if parallel else None
    )
    sync = next((r for r in cells if r["backend"] == "sync"), None)
    baseline = report["meta"]["pr1_baseline"]["aggregate_steps_per_s"]
    summary = {
        "paper_vec16_best_backend": best["backend"],
        "paper_vec16_best_steps_per_s": best["aggregate_steps_per_s"],
        "speedup_vs_pr1_sync_baseline": round(
            best["aggregate_steps_per_s"] / baseline, 2
        ),
    }
    host_matches = (
        os.cpu_count() == PR1_BASELINE_HOST["cpu_count"]
        and platform.system() == PR1_BASELINE_HOST["platform_system"]
    )
    if baseline == PR1_BASELINE_PAPER_VEC16 and not host_matches:
        summary["cross_host_warning"] = (
            "pr1 baseline was measured on a different host class; the "
            "speedup ratio mixes hardware and code effects — re-measure "
            "the baseline here and pass --baseline"
        )
    if sync is not None:
        summary["paper_vec16_sync_steps_per_s"] = sync["aggregate_steps_per_s"]
    batched = next((r for r in cells if r["backend"] == "batched"), None)
    if batched is not None:
        summary["paper_vec16_batched_steps_per_s"] = batched[
            "aggregate_steps_per_s"
        ]
        if sync is not None:
            summary["batched_speedup_vs_sync"] = round(
                batched["aggregate_steps_per_s"]
                / sync["aggregate_steps_per_s"], 2
            )
    if best_parallel is not None:
        summary["paper_vec16_best_parallel_backend"] = best_parallel["backend"]
        summary["paper_vec16_best_parallel_steps_per_s"] = best_parallel[
            "aggregate_steps_per_s"
        ]
        summary["parallel_speedup_vs_pr1_sync_baseline"] = round(
            best_parallel["aggregate_steps_per_s"] / baseline, 2
        )
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--networks", default="tiny,small,paper")
    parser.add_argument("--backends", default="sync,batched,process,shm")
    parser.add_argument("--num-envs", default="1,4,16")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke grid: the tracked paper-net vec-16 "
        "cell on every backend, fewer rounds "
        "(feeds benchmarks/compare_bench_throughput.py)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=200,
        help="lockstep rounds per cell (default: 200)",
    )
    parser.add_argument("--num-workers", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--baseline",
        type=float,
        default=PR1_BASELINE_PAPER_VEC16,
        help="PR 1 paper-net vec-16 aggregate steps/s "
        "measured on THIS host (default: the "
        "reference-host figure)",
    )
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parent.parent / "BENCH_vec_throughput.json"
        ),
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.networks = "paper"
        args.num_envs = "16"
        args.rounds = min(args.rounds, 100)

    report = run_sweep(
        [n.strip() for n in args.networks.split(",") if n.strip()],
        [b.strip() for b in args.backends.split(",") if b.strip()],
        [int(n) for n in args.num_envs.split(",")],
        args.rounds,
        seed=args.seed,
        num_workers=args.num_workers,
    )
    report["meta"]["pr1_baseline"]["aggregate_steps_per_s"] = args.baseline
    report["summary"] = summarize(report)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)
    if report["summary"]:
        print(json.dumps(report["summary"], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
