"""Experiment E13 (extension): one policy, many network sizes.

Section 4.4's architectural claim -- per-type parameter sharing makes
the policy size-agnostic -- is tested by the paper only across its two
fixed networks (train small, evaluate large). This bench samples
random topologies from 3-40 workstations and 4-80 PLCs, binds the
*same* shipped Q-network to each, and confirms (a) the parameter count
never moves and (b) the policy defends every sampled plant.

The per-network rows double as a scaling profile: action-space size
grows linearly with the network while the weight file stays constant --
the conv baseline of Table 7 could not produce this table at all, since
its output layer must be rebuilt (and retrained) per size.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from benchmarks.conftest import episodes_per_cell, write_result
import repro
from repro.config import small_network
from repro.defenders.acso import ACSOPolicy
from repro.eval.runner import evaluate_policy
from repro.net.generator import TopologySampler, sample_configs

_MAX_STEPS = 400


def test_size_generalization(benchmark, eval_tables, acso_qnet):
    episodes = episodes_per_cell(1)
    base = small_network(tmax=_MAX_STEPS)
    base = base.with_apt(replace(base.apt, time_scale=4.0))
    configs = sample_configs(
        5, base, TopologySampler(max_workstations=30, max_plcs=60), seed=42
    )

    def run():
        rows = []
        policy = ACSOPolicy(acso_qnet, eval_tables)
        for config in configs:
            env = repro.make_env(config, seed=7)
            aggregate, _ = evaluate_policy(
                env, policy, episodes, seed=7, max_steps=_MAX_STEPS
            )
            rows.append(
                (
                    config.topology.n_nodes,
                    config.topology.plcs,
                    env.n_actions,
                    acso_qnet.n_parameters(),
                    aggregate,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Size generalization: one Q-network, {len(rows)} sampled plants "
        f"({episodes} episode(s) each, {_MAX_STEPS}-step horizon)",
        f"{'nodes':>6} {'PLCs':>5} {'actions':>8} {'params':>7} "
        f"{'return':>9} {'PLCs off':>9} {'compromised':>12}",
    ]
    for n_nodes, n_plcs, n_actions, n_params, agg in rows:
        lines.append(
            f"{n_nodes:>6} {n_plcs:>5} {n_actions:>8} {n_params:>7} "
            f"{agg.mean('discounted_return'):>9.1f} "
            f"{agg.mean('final_plcs_offline'):>9.2f} "
            f"{agg.mean('avg_nodes_compromised'):>12.2f}"
        )
    write_result("size_generalization.txt", "\n".join(lines))

    param_counts = {row[3] for row in rows}
    assert len(param_counts) == 1  # the architecture contract
    action_counts = {row[2] for row in rows}
    assert len(action_counts) > 1  # the networks genuinely differ
    for row in rows:
        assert np.isfinite(row[4].mean("discounted_return"))
