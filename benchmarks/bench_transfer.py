"""Experiment E12 (extension): cross-network transfer.

The paper's scaling argument (Section 4.4) is that attention-network
parameters never grow with node count, so one policy can protect
networks of different sizes; its future work asks for pre-train /
fine-tune deployment. This bench measures that pipeline with the
shipped artifacts: the packaged ACSO Q-network was trained on the
paper's *grid-search* network (10 workstations / 3 HMIs / 30 PLCs), and
is here evaluated zero-shot on the full evaluation network (25/5/50,
329 actions) against an untrained network of identical architecture.

Expected shape: identical parameter counts on both networks, and the
pre-trained policy dominating the untrained one on the target network
-- transfer moves real decision knowledge, not just shapes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import episodes_per_cell, write_result
from repro.config import paper_network, small_network
from repro.rl import AttentionQNetwork, QNetConfig
from repro.transfer import evaluate_greedy_policy

_MAX_STEPS = 800


def test_zero_shot_transfer(benchmark, eval_tables, acso_qnet):
    episodes = episodes_per_cell(2)
    source_cfg = small_network(tmax=_MAX_STEPS)
    target_cfg = paper_network(tmax=_MAX_STEPS)

    def run():
        rows = {}
        untrained = AttentionQNetwork(QNetConfig(), seed=99)
        rows["pretrained on source"] = evaluate_greedy_policy(
            source_cfg, acso_qnet, eval_tables, episodes, seed=50, max_steps=_MAX_STEPS
        )
        rows["zero-shot on target"] = evaluate_greedy_policy(
            target_cfg, acso_qnet, eval_tables, episodes, seed=50, max_steps=_MAX_STEPS
        )
        rows["untrained on target"] = evaluate_greedy_policy(
            target_cfg, untrained, eval_tables, episodes, seed=50, max_steps=_MAX_STEPS
        )
        params = {
            "pretrained": acso_qnet.n_parameters(),
            "untrained": untrained.n_parameters(),
        }
        return rows, params

    rows, params = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Zero-shot transfer, small -> paper network ({episodes} episodes, "
        f"{_MAX_STEPS}-step horizon)",
        f"parameters: {params['pretrained']} (identical on both networks)",
        f"{'policy':<24} {'return':>10} {'PLCs off':>9} {'IT cost':>9} "
        f"{'compromised':>12}",
    ]
    for name, agg in rows.items():
        lines.append(
            f"{name:<24} {agg.mean('discounted_return'):>10.1f} "
            f"{agg.mean('final_plcs_offline'):>9.2f} "
            f"{agg.mean('avg_it_cost'):>9.3f} "
            f"{agg.mean('avg_nodes_compromised'):>12.2f}"
        )
    write_result("transfer.txt", "\n".join(lines))

    assert params["pretrained"] == params["untrained"]
    for agg in rows.values():
        assert np.isfinite(agg.mean("discounted_return"))
