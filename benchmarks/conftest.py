"""Shared benchmark fixtures.

Episode counts are controlled by the ``REPRO_EPISODES`` environment
variable (default: small CI-friendly numbers; the paper uses 100
episodes per cell -- set REPRO_EPISODES=100 to match).

The policy suite loads pre-built artifacts from ``benchmarks/data/``
when present (produced by ``examples/train_acso.py`` and
``benchmarks/fit_eval_dbn.py``); otherwise it fits a small DBN on the
fly and uses an untrained Q-network so the harness always runs.
"""

from __future__ import annotations

import os
import pathlib

import pytest

import repro
from repro.config import paper_network
from repro.dbn import DBNTables, fit_dbn
from repro.defenders import DBNExpertPolicy, PlaybookPolicy, SemiRandomPolicy
from repro.defenders.acso import ACSOPolicy
from repro.nn import load_state
from repro.rl import AttentionQNetwork, QNetConfig

DATA_DIR = pathlib.Path(__file__).resolve().parent / "data"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"


def episodes_per_cell(default: int) -> int:
    return int(os.environ.get("REPRO_EPISODES", default))


@pytest.fixture(scope="session")
def eval_config():
    return paper_network()


@pytest.fixture(scope="session")
def eval_tables(eval_config) -> DBNTables:
    path = DATA_DIR / "dbn_paper.npz"
    if path.exists():
        return DBNTables.load(path)
    return fit_dbn(
        lambda: repro.make_env(eval_config),
        lambda: SemiRandomPolicy(rate=5.0),
        episodes=4,
        seed=0,
    )


@pytest.fixture(scope="session")
def acso_qnet(eval_tables) -> AttentionQNetwork:
    qnet = AttentionQNetwork(QNetConfig(), seed=0)
    path = DATA_DIR / "acso_qnet.npz"
    if path.exists():
        load_state(qnet, path)
    return qnet


@pytest.fixture(scope="session")
def policy_suite(eval_tables, acso_qnet):
    """The four Table 2 policies, keyed by their paper names."""
    return {
        "ACSO": ACSOPolicy(acso_qnet, eval_tables),
        "DBN Expert": DBNExpertPolicy(eval_tables, seed=0),
        "Playbook": PlaybookPolicy(),
        "Semi Random": SemiRandomPolicy(seed=0),
    }


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)
