"""Benchmark-regression gate for the vectorized-throughput sweep.

Compares a fresh ``bench_vec_throughput.py`` report (typically the CI
``--quick`` grid) against the committed ``BENCH_vec_throughput.json``
baseline and fails when aggregate steps/s regressed beyond the
tolerance.

Hosts differ: the committed baseline was measured on the reference
container, while CI runs on whatever runner class GitHub provides. Raw
steps/s therefore mix hardware speed with code changes. The gate
separates them by calibrating on the sync cell of the tracked
paper-net vec-16 workload: the sync backend shares the engine with the
parallel backends but none of the worker-pool transport, so the ratio
``sync_now / sync_baseline`` is a host-speed factor, and each parallel
cell is judged on its *calibrated* ratio. A catastrophic engine
regression would drag the sync cell itself down, which a second,
deliberately generous absolute check on the calibration cell catches
(``--max-host-drift``).

Exit status 0 = within tolerance, 1 = regression, 2 = unusable inputs.

Usage (what the CI ``bench-smoke`` job runs)::

    python benchmarks/bench_vec_throughput.py --quick --out bench_quick.json
    python benchmarks/compare_bench_throughput.py bench_quick.json \
        --baseline BENCH_vec_throughput.json --max-regression 0.30
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

DEFAULT_BASELINE = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_vec_throughput.json"
)

#: the tracked workload: paper network, 16 lanes, sync backend
CALIBRATION_CELL = ("paper", "sync", 16)

#: cells the gate refuses to silently drop: when the baseline tracks
#: one of these and the current report lacks it, the run is unusable
#: (status 2) rather than a smaller, quietly weaker comparison — the
#: batched backend rides the same >30% tolerance as every other row
REQUIRED_CELLS = (("paper", "batched", 16),)


def _cells(report: dict) -> dict[tuple, float]:
    return {
        (r["network"], r["backend"], r["num_envs"]): r["aggregate_steps_per_s"]
        for r in report["results"]
    }


def compare(
    current: dict,
    baseline: dict,
    max_regression: float = 0.30,
    max_host_drift: float = 0.60,
    calibrate: bool = True,
) -> tuple[int, list[str]]:
    """Return (exit status, report lines) for a current-vs-baseline run."""
    lines: list[str] = []
    cur = _cells(current)
    base = _cells(baseline)
    shared = sorted(set(cur) & set(base))
    if not shared:
        return 2, ["no overlapping benchmark cells between current and baseline"]
    for key in REQUIRED_CELLS:
        if key in base and key not in cur:
            network, backend, num_envs = key
            return 2, [
                f"tracked cell {network}/{backend}/{num_envs} is in the "
                "baseline but missing from the current report; rerun the "
                "sweep with a grid that includes it"
            ]

    factor = 1.0
    if calibrate:
        if CALIBRATION_CELL not in cur or CALIBRATION_CELL not in base:
            return 2, [
                "calibration cell paper/sync/16 missing; rerun with a grid "
                "that includes it or pass --no-calibrate"
            ]
        factor = cur[CALIBRATION_CELL] / base[CALIBRATION_CELL]
        lines.append(
            f"host-speed factor (paper/sync/16): {factor:.3f} "
            f"({cur[CALIBRATION_CELL]:.0f} vs {base[CALIBRATION_CELL]:.0f} steps/s)"
        )
        if factor < 1.0 - max_host_drift:
            lines.append(
                f"FAIL paper/sync/16: absolute rate fell {1.0 - factor:.0%}, "
                f"beyond the {max_host_drift:.0%} host-drift allowance -- "
                "either the engine regressed badly or this host cannot run "
                "the gate; re-baseline with bench_vec_throughput.py"
            )
            return 1, lines

    floor = 1.0 - max_regression
    failures = 0
    ratios: list[float] = []
    for key in shared:
        raw = cur[key] / base[key]
        is_calibration = calibrate and key == CALIBRATION_CELL
        adjusted = raw if is_calibration else (raw / factor if calibrate else raw)
        verdict = "ok"
        if is_calibration:
            # its calibrated ratio is 1.0 by construction: including the
            # raw ratio would leak host speed into the code verdict
            verdict = "calibration cell"
        else:
            ratios.append(adjusted)
            if adjusted < floor:
                verdict = f"FAIL (allowed >= {floor:.2f})"
                failures += 1
        network, backend, num_envs = key
        lines.append(
            f"{network:>6} {backend:>8} x{num_envs:<3} "
            f"{cur[key]:>10.0f} vs {base[key]:>10.0f} steps/s  "
            f"ratio {adjusted:.2f}  {verdict}"
        )
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        lines.append(
            f"geometric-mean calibrated ratio over {len(ratios)} cells: "
            f"{geomean:.2f}"
        )
        if geomean < floor:
            lines.append(f"FAIL aggregate: {geomean:.2f} < {floor:.2f}")
            failures += 1
    return (1 if failures else 0), lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="fresh bench_vec_throughput.py report")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline report (default: BENCH_vec_throughput.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated per-cell / aggregate drop after host calibration "
        "(default: 0.30)",
    )
    parser.add_argument(
        "--max-host-drift",
        type=float,
        default=0.60,
        help="tolerated absolute drop of the sync calibration cell "
        "(default: 0.60)",
    )
    parser.add_argument(
        "--no-calibrate",
        action="store_true",
        help="compare raw steps/s without the host-speed factor",
    )
    args = parser.parse_args(argv)

    with open(args.current) as handle:
        current = json.load(handle)
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    status, lines = compare(
        current,
        baseline,
        max_regression=args.max_regression,
        max_host_drift=args.max_host_drift,
        calibrate=not args.no_calibrate,
    )
    print("\n".join(lines))
    if status == 0:
        print("benchmark gate: OK")
    else:
        print("benchmark gate: REGRESSION DETECTED", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
